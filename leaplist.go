// Package leaplist is a concurrent ordered map with linearizable range
// queries, implementing the Leap-List of Avni, Shavit and Suissa
// ("Leaplist: Lessons Learned in Designing TM-Supported Range Queries",
// PODC 2013).
//
// A Leap-List is a skip-list whose nodes are "fat": each node holds up to K
// immutable key-value pairs from a contiguous key range plus an embedded
// bitwise trie for in-node lookup. Point lookups cost O(log n) like a
// skip-list or balanced tree, but collecting a range is ~K times cheaper
// per key than a per-node skip-list scan — and, unlike the usual lock-free
// alternatives, the result is a consistent snapshot.
//
// # Maps, groups and transactions
//
// A Map is one ordered uint64 → V dictionary. Maps created from the same
// Group share a software-transactional-memory domain, and a transaction
// built with Group.Txn applies any mix of Set, Delete, Get, GetRange and
// DeleteRange operations — across any member maps, with any number of
// keys per map — as a single atomic (linearizable) operation. This
// generalizes the paper's composed updates over L lists into a real
// multi-key transaction API, intended for keeping multiple database
// indexes coherent or moving values atomically between keys:
//
//	g := leaplist.NewGroup[string]()
//	byID, byTime := g.NewMap(), g.NewMap()
//	tx := g.Txn()
//	tx.Set(byID, id, payload).Set(byTime, timestamp, payload)
//	tx.Delete(byID, oldID)
//	window := tx.GetRange(byTime, since, timestamp)
//	err := tx.Commit()
//	// window.Pairs(): a snapshot at the same instant the writes landed
//
// Within a Tx, ops on the same key apply in staging order (last write
// wins) and staged Gets read their own transaction's earlier writes;
// range ops follow the same rule per covered key, so a GetRange snapshot
// reflects writes staged before it and a DeleteRange spares keys Set
// after it. Every result of one Tx — point reads, range snapshots,
// delete counts — is resolved at the single commit linearization point.
// Keys that land in the same fat node are coalesced into one node
// replacement, and an interval delete costs O(levels + boundary), not
// O(deleted keys): the run of nodes fully covered by the interval is
// spliced out with one predecessor pointer swing per skip-list level
// and retired as a single chain, so only the two partially covered
// boundary nodes are actually rebuilt — deleting a million-key span
// touches the same handful of cells as deleting a hundred-key one. The
// legacy SetMany/DeleteMany entry points remain as thin wrappers over
// Txn.
//
// Single-map usage needs no group:
//
//	m := leaplist.New[string]()
//	_ = m.Set(42, "hello")
//	v, ok := m.Get(42)
//	m.Range(40, 50, func(k uint64, v string) bool { return true })
//
// # Sharding and cross-shard transactions
//
// A transaction is atomic within one Group (one STM domain). To scale
// past a single domain, Sharded partitions one logical ordered map by
// key range over N independent Groups: point operations route to the
// owning shard with zero cross-shard coordination, while Sharded.Txn
// keeps full transactional semantics across shards — staged ops are
// routed to per-shard sub-transactions (ranges split at shard
// boundaries, their results stitched back in key order) and committed
// by a deterministic two-phase protocol built on the commit pipeline's
// prepare/publish split: every involved shard is prepared in ascending
// shard order (search, build, validate, lock — deadlock excluded by the
// global order), then all are published; a prepare failure aborts the
// prepared prefix, restoring every shard exactly, and retries. A
// prepared shard pins its reads as well as its writes until publish,
// which is what makes a committed cross-shard transaction all-or-none
// even against concurrent Sharded.Txn readers:
//
//	s := leaplist.NewSharded[uint64](8)
//	tx := s.Txn()
//	tx.Set(kA, debited).Set(kB, credited) // different shards
//	total := tx.GetRange(0, leaplist.MaxKey) // one atomic snapshot of all shards
//	err := tx.Commit()
//
// Transactions that touch a single shard skip the coordination
// entirely, so occasional cross-shard transactions cost nothing on the
// per-shard fast path.
//
// # Synchronization variants
//
// The package ships the four synchronization protocols the paper evaluates
// (see WithVariant): LT — the paper's contribution, Locking Transactions
// over a consistency-oblivious search, the default and fastest; TM —
// whole-operation transactions; COP — transactional validation+write after
// an uninstrumented search; RWLock — a per-map reader-writer lock. All
// variants provide the same linearizable semantics; they differ only in
// cost profile, reproduced by the benchmark suite in this repository.
//
// # Keys
//
// Keys are uint64 in [0, 2^64-2]; 2^64-1 is reserved and rejected with
// ErrKeyRange. Values are arbitrary; the structure stores them immutably
// per version (an overwrite replaces the pair, never mutates it), which is
// what makes range-query snapshots zero-coordination reads.
//
// # Failure model, deadlines, and fault injection
//
// A transaction that does not commit leaves every involved map exactly
// as it found it: prepare failures (contention, cancellation) abort by
// restoring pre-state and recycling every never-published piece, and
// once a commit starts publishing it always finishes. On that footing
// the package offers bounded-time commits as graceful degradation
// rather than a correctness hazard:
//
//   - Tx.CommitContext / ShardedTx.CommitContext bound one commit by a
//     context. If the deadline passes (or the context is canceled)
//     before the commit wins its prepare — or, for a cross-shard
//     transaction, before the two-phase protocol wins every shard — the
//     attempt is cleanly abandoned and the call returns an error
//     wrapping ErrTxTimeout. Nothing is held afterwards: a prepared
//     prefix of shards is fully aborted before returning.
//   - WithCommitDeadline bounds every commit of a Group or Sharded the
//     same way, with no context plumbing.
//   - WithCommitAttempts caps the cross-shard retry loop by rounds
//     instead of wall time; exhaustion also surfaces ErrTxTimeout.
//
// A timed-out transaction is the one commit error the caller is meant
// to handle: retry with a fresh Tx, or degrade to a smaller footprint
// (examples/bank sheds a cross-branch transfer to single-branch
// operations when the coordinated path cannot meet its deadline). The
// STM stats (WithSTMStats) count timeouts, bounded-prepare conflicts
// and the retry high-water mark.
//
// These guarantees are tested by fault injection rather than luck: the
// failpoint build tag (-tags failpoint, internal/failpoint) compiles
// named injection sites into every stage of the commit pipeline — the
// prepare/publish/abort of each variant, the bundle publish steps, the
// epoch machinery and every leg of the sharded two-phase commit — and
// the chaos suites arm them to inject errors, crash-panics, stalls and
// scheduler churn at each site, proving abort-exactness, all-or-none
// cross-shard recovery and bounded-time failure under the race
// detector. Normal builds compile the sites to nothing.
//
// # Static invariant checking (leaplint)
//
// The concurrency invariants this package depends on — epoch pins around
// node access, all-atomic-or-all-plain field access, pooled-scratch
// clearing before reuse, prepare/publish/abort pairing, era-guarded
// finger consumption, and build-tag gating of the fault-injection
// shims — are enforced by a bundled static analysis suite:
//
//	go run ./cmd/leaplint ./...
//	go vet -vettool=$(which leaplint) ./...
//
// CI gates on zero unsuppressed findings; deliberate exceptions carry a
// "//lint:allow <analyzer> <reason>" annotation at the site. See the
// internal/core package documentation ("Invariants and static
// enforcement") for what each analyzer proves and why it matters.
package leaplist

import (
	"sync"
	"time"

	"leaplist/internal/core"
	"leaplist/internal/epoch"
	"leaplist/internal/stm"
)

// Variant selects the synchronization protocol of a Group.
type Variant = core.Variant

// Synchronization variants, named as in the paper.
const (
	// LT uses Locking Transactions (the paper's Leap-LT): zero-transaction
	// lookups, one short transaction per modification. The default.
	LT = core.VariantLT
	// TM wraps every operation in one STM transaction (Leap-tm).
	TM = core.VariantTM
	// COP validates an uninstrumented search inside a transaction that
	// also performs the writes (Leap-COP).
	COP = core.VariantCOP
	// RWLock serializes each map with a reader-writer lock (Leap-rwlock).
	RWLock = core.VariantRW
)

// MaxKey is the largest storable key.
const MaxKey = core.MaxKey

// Errors surfaced by the API. Each is an alias of (or wraps) the
// corresponding core sentinel, so errors.Is works across both layers.
//
// Tx.Commit returns only ErrForeignMap (a staged map was nil or belongs
// to another group), ErrKeyRange (a staged key was 2^64-1), or
// ErrTxCommitted (the Tx was committed twice); contention never surfaces
// as an error. The legacy SetMany/DeleteMany wrappers additionally return
// ErrEmptyBatch, ErrBatchMismatch and ErrDuplicateMap for their
// fixed-shape slice contracts.
var (
	// ErrKeyRange aliases core.ErrKeyRange: key 2^64-1 is reserved.
	ErrKeyRange = core.ErrKeyRange
	// ErrBatchMismatch aliases core.ErrBatchMismatch: slice lengths differ.
	ErrBatchMismatch = core.ErrBatchMismatch
	// ErrForeignMap aliases core.ErrForeignList: a map is nil or belongs
	// to a different group.
	ErrForeignMap = core.ErrForeignList
	// ErrDuplicateMap aliases core.ErrDuplicateList: the legacy SetMany/
	// DeleteMany shapes address each map at most once (use Txn for
	// multi-key-per-map batches).
	ErrDuplicateMap = core.ErrDuplicateList
	// ErrEmptyBatch aliases core.ErrEmptyBatch: the legacy wrappers
	// reject empty slices (an empty Tx, by contrast, is a no-op).
	ErrEmptyBatch = core.ErrEmptyBatch
)

// KV is one key-value pair, as returned by Collect, Iterator.Next and
// TxRange.Pairs. It aliases the core type so range snapshots cross the
// facade without copying.
type KV[V any] = core.KV[V]

// Option configures a Group (or the implicit group of New).
type Option func(*options)

type options struct {
	nodeSize       int
	maxLevel       int
	variant        Variant
	stats          bool
	noFingers      bool
	noHashIndex    bool
	noBundles      bool
	collector      *epoch.Collector
	clock          *stm.Clock
	commitDeadline time.Duration
	commitAttempts int
}

// WithNodeSize sets K, the maximum pairs per node (default 300, the
// paper's experimentally chosen value). Larger K cheapens range queries
// and taxes updates, which copy a node per write.
func WithNodeSize(k int) Option {
	return func(o *options) { o.nodeSize = k }
}

// WithMaxLevel sets the maximum skip-list level (default 10, the paper's
// value, suitable up to millions of keys at K=300).
func WithMaxLevel(levels int) Option {
	return func(o *options) { o.maxLevel = levels }
}

// WithVariant selects the synchronization protocol (default LT).
func WithVariant(v Variant) Option {
	return func(o *options) { o.variant = v }
}

// WithSTMStats enables commit/abort counting on the group's STM domain,
// readable through Group.STMStats.
func WithSTMStats(enabled bool) Option {
	return func(o *options) { o.stats = enabled }
}

// WithFingers toggles the search-acceleration fingers (default on).
// Fingers remember where the last operation landed — per pooled read
// scratch for Get/Range/Collect, per pooled commit scratch for Set/
// Delete/Tx.Commit — and let a key near the previous one skip most of
// its skip-list descent; a multi-key Tx additionally reuses each staged
// key's predecessors for the next (ascending) key, costing one descent
// plus short walks instead of one descent per key. Fingers are hints:
// every reuse is re-validated (liveness, owning list, position) and
// falls back to a full descent, so results are identical either way.
// Disabling exists for A/B benchmarking (see BenchmarkLocality) and for
// bisecting suspected regressions; workloads with no key locality lose
// nothing measurable with fingers on. Sharded maps pass the option to
// every shard, so cross-shard transactions keep per-shard fingers.
func WithFingers(enabled bool) Option {
	return func(o *options) { o.noFingers = !enabled }
}

// WithHashIndex toggles the per-map point-lookup hash index (default
// on). Each map keeps an open-addressed key→node table maintained at
// the commit pipeline's publish phase; Get and the point-op half of a
// Tx consult it to skip the skip-list descent for keys it remembers.
// Entries are hints: every hit is re-validated (epoch era, liveness,
// owning list, key-range bounds) and falls back to a full descent, so
// results are identical either way — the index only changes where the
// level-0 walk starts. Unlike fingers, which help only local/ascending
// access, the index accelerates uniform-random point reads (see
// BenchmarkPointIndex). Disabling exists for A/B benchmarking and for
// bisecting suspected regressions. Sharded maps pass the option to
// every shard, so each shard keeps its own per-map index.
func WithHashIndex(enabled bool) Option {
	return func(o *options) { o.noHashIndex = !enabled }
}

// WithBundles toggles the versioned level-0 links and the timestamped
// read path built on them (default on). With bundles on, every commit
// stamps the level-0 links it changes with a global-clock timestamp at
// its publish phase, and snapshot reads — Range, Collect, Count, the
// Iterator, and read-only transactions — resolve against the chain as
// of one clock instant: they never retry under structural churn, never
// take locks, and writers never wait for them (the only wait a reader
// ever does is a bounded spin inside a concurrent commit's publish
// window). On a Sharded map the shards share one clock, so a read-only
// Sharded.Txn commits against a single frozen cut of every shard with
// no two-phase coordination and zero aborts. Disabling reverts every
// read to the variant's classic validate-and-retry path and exists for
// A/B benchmarking (see BenchmarkSnapshotScan); fixed at construction.
func WithBundles(enabled bool) Option {
	return func(o *options) { o.noBundles = !enabled }
}

// WithCommitDeadline bounds every commit of the group (or of each shard
// group of a Sharded) to d of wall time, measured from the Commit /
// CommitContext call: a commit that cannot win its prepare within d is
// cleanly abandoned and fails with an error wrapping ErrTxTimeout, the
// structure untouched. CommitContext deadlines compose — the earlier
// bound wins. Zero (the default) leaves plain Commit unbounded. This is
// the backstop for "no transaction may stall the serving path forever":
// under sustained overload the timeout surfaces as a fast, clean error
// the caller can shed on, instead of an unbounded convoy.
func WithCommitDeadline(d time.Duration) Option {
	return func(o *options) { o.commitDeadline = d }
}

// WithCommitAttempts caps the cross-shard two-phase commit's retry loop
// at n whole prepare-all rounds (default DefaultCommitAttempts, a
// generous bound that only overload can reach). When the cap is hit the
// prepared prefix has been aborted and Commit fails with an error
// wrapping ErrTxTimeout that reports the attempt count. Applies to
// Sharded groups only; single-group commits bound time with
// WithCommitDeadline or CommitContext instead.
func WithCommitAttempts(n int) Option {
	return func(o *options) { o.commitAttempts = n }
}

// withClock supplies the STM clock the group's domain runs on; used by
// NewSharded to give every shard one global clock, which is what makes
// a single timestamp meaningful across shards.
func withClock(c *stm.Clock) Option {
	return func(o *options) { o.clock = c }
}

// WithCollector supplies the epoch collector the group runs on — every
// operation pins it and every replaced node retires through it into the
// group's node recycler — exposing the reclamation accounting of the
// paper's allocator and letting several groups share one epoch domain.
// Without this option the group uses a private collector.
func WithCollector(c *epoch.Collector) Option {
	return func(o *options) { o.collector = c }
}

// Group is a family of Maps sharing one STM domain; cross-map batches are
// atomic only within one group.
type Group[V any] struct {
	inner *core.Group[V]
	stm   *stm.STM

	// commitDeadline, when nonzero, bounds every commit's wall time
	// (WithCommitDeadline); exceeded bounds surface as ErrTxTimeout.
	commitDeadline time.Duration

	txPool sync.Pool // released *Tx[V] builders (see Tx.Release)
}

// NewGroup creates an empty group.
func NewGroup[V any](opts ...Option) *Group[V] {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	var stmOpts []stm.Option
	if o.stats {
		stmOpts = append(stmOpts, stm.WithStats(true))
	}
	if o.clock != nil {
		stmOpts = append(stmOpts, stm.WithClock(o.clock))
	}
	domain := stm.New(stmOpts...)
	inner := core.NewGroup[V](core.Config{
		NodeSize:    o.nodeSize,
		MaxLevel:    o.maxLevel,
		Variant:     o.variant,
		NoFingers:   o.noFingers,
		NoHashIndex: o.noHashIndex,
		NoBundles:   o.noBundles,
		Collector:   o.collector,
	}, domain)
	return &Group[V]{inner: inner, stm: domain, commitDeadline: o.commitDeadline}
}

// NewMap creates an empty map in the group.
func (g *Group[V]) NewMap() *Map[V] {
	return &Map[V]{list: g.inner.NewList(), group: g}
}

// SetMany atomically performs ms[j][ks[j]] = vs[j] for every j: either all
// assignments are visible or none. The maps must be distinct members of
// this group.
//
// Deprecated: SetMany is the legacy fixed-shape batch (one key per map,
// sets only) and is kept as a thin wrapper over Txn; new code should
// build a Tx, which also supports multiple keys per map, deletes and
// reads in one atomic batch.
func (g *Group[V]) SetMany(ms []*Map[V], ks []uint64, vs []V) error {
	if len(ms) == 0 {
		return ErrEmptyBatch
	}
	if len(ks) != len(ms) || len(vs) != len(ms) {
		return ErrBatchMismatch
	}
	if err := distinctMaps(ms); err != nil {
		return err
	}
	tx := g.Txn()
	for j := range ms {
		tx.Set(ms[j], ks[j], vs[j])
	}
	err := tx.Commit()
	tx.Release()
	return err
}

// DeleteMany atomically deletes ks[j] from ms[j] for every j, returning
// per-map whether the key was present.
//
// Deprecated: DeleteMany is the legacy fixed-shape batch (one key per
// map, deletes only) and is kept as a thin wrapper over Txn; new code
// should build a Tx.
func (g *Group[V]) DeleteMany(ms []*Map[V], ks []uint64) ([]bool, error) {
	if len(ms) == 0 {
		return nil, ErrEmptyBatch
	}
	if len(ks) != len(ms) {
		return nil, ErrBatchMismatch
	}
	if err := distinctMaps(ms); err != nil {
		return nil, err
	}
	tx := g.Txn()
	dels := make([]TxDelete[V], len(ms))
	for j := range ms {
		dels[j] = tx.Delete(ms[j], ks[j])
	}
	if err := tx.Commit(); err != nil {
		tx.Release() // handles are never read on the error path
		return nil, err
	}
	changed := make([]bool, len(ms))
	for j := range dels {
		changed[j] = dels[j].Present()
	}
	tx.Release() // after the handles above were read
	return changed, nil
}

// distinctMaps enforces the legacy wrappers' one-key-per-map contract.
func distinctMaps[V any](ms []*Map[V]) error {
	for j, m := range ms {
		for i := 0; i < j; i++ {
			if ms[i] == m && m != nil {
				return ErrDuplicateMap
			}
		}
	}
	return nil
}

// STMStats returns the group's STM counters (zero unless WithSTMStats).
func (g *Group[V]) STMStats() stm.StatsSnapshot {
	return g.stm.Stats()
}

// Map is one concurrent ordered dictionary. All methods are safe for
// concurrent use; Get, Range and Collect are linearizable with respect to
// Set and Delete.
type Map[V any] struct {
	list  *core.List[V]
	group *Group[V]
}

// New creates a standalone map with a private group.
func New[V any](opts ...Option) *Map[V] {
	return NewGroup[V](opts...).NewMap()
}

// Group returns the map's group.
func (m *Map[V]) Group() *Group[V] {
	return m.group
}

// Set inserts or overwrites key k with value v.
func (m *Map[V]) Set(k uint64, v V) error {
	return m.list.Set(k, v)
}

// Get returns the value stored under k.
func (m *Map[V]) Get(k uint64) (V, bool) {
	return m.list.Lookup(k)
}

// Delete removes k, reporting whether it was present.
func (m *Map[V]) Delete(k uint64) (bool, error) {
	return m.list.Delete(k)
}

// Range streams one consistent snapshot of every pair with key in
// [lo, hi], in ascending key order, stopping early if fn returns false
// (no further pairs are visited or copied out of the snapshot). The
// snapshot is taken before the first fn call, so fn may be slow, may
// call back into the map, and always observes a state that existed at one
// linearization instant.
func (m *Map[V]) Range(lo, hi uint64, fn func(k uint64, v V) bool) {
	m.list.RangeQuery(lo, hi, fn)
}

// Count returns the number of keys in [lo, hi] at one linearization
// instant.
func (m *Map[V]) Count(lo, hi uint64) int {
	return m.list.RangeQuery(lo, hi, nil)
}

// Collect returns one consistent snapshot of [lo, hi] as a slice. For a
// snapshot taken atomically with writes (or reads of other maps), stage
// a Tx.GetRange instead.
func (m *Map[V]) Collect(lo, hi uint64) []KV[V] {
	return m.list.CollectRange(lo, hi)
}

// CollectInto appends one consistent snapshot of [lo, hi] to buf and
// returns the extended slice — the caller-supplied-buffer form of
// Collect. Passing buf[:0] with enough capacity makes hot range-read
// loops allocation-free in steady state, the read-path counterpart of
// the zero-allocation write path:
//
//	buf := make([]leaplist.KV[V], 0, 1024)
//	for {
//		buf = m.CollectInto(lo, hi, buf[:0])
//		... // buf is valid until the next CollectInto
//	}
func (m *Map[V]) CollectInto(lo, hi uint64, buf []KV[V]) []KV[V] {
	return m.list.CollectRangeInto(lo, hi, buf)
}

// Len returns the total number of keys; it traverses the node list
// (O(n/K) node visits) and is not linearizable with concurrent writers.
func (m *Map[V]) Len() int {
	return m.list.Len()
}

// BulkLoad fills an empty, unshared map from sorted, strictly increasing
// keys; the fast path for benchmark and startup loading.
func (m *Map[V]) BulkLoad(keys []uint64, vals []V) error {
	return m.list.BulkLoad(keys, vals)
}
