package leaplist

// Bounded-commit tests that run in the normal build (no failpoint tag):
// CommitContext with expired and contended contexts, WithCommitDeadline,
// and the WithCommitAttempts retry ceiling. Contention is created the
// way a real competitor creates it — a held PrepareOps footprint on the
// underlying core group — so these cover the production abort paths
// without any injection machinery.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"leaplist/internal/core"
)

// holdFootprint prepares (and holds) a Set on key k of m's core list,
// returning the abort func. While held, any commit touching k conflicts.
func holdFootprint(t *testing.T, g *Group[uint64], m *Map[uint64], k uint64) func() {
	t.Helper()
	ops := []core.Op[uint64]{{List: m.list, Kind: core.OpSet, Key: k, Val: ^uint64(0)}}
	p, err := g.inner.PrepareOps(ops, core.PrepareOpts{})
	if err != nil {
		t.Fatalf("holdFootprint: PrepareOps: %v", err)
	}
	return p.Abort
}

// TestCommitContextExpired: an already-dead context fails the commit
// fast with ErrTxTimeout before touching the structure, on every
// variant; the Tx records the error and a fresh Tx commits.
func TestCommitContextExpired(t *testing.T) {
	for _, v := range []Variant{LT, TM, COP, RWLock} {
		t.Run(v.String(), func(t *testing.T) {
			m := New[uint64](WithVariant(v))
			if err := m.Set(1, 10); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			tx := m.Group().Txn().Set(m, 1, 99)
			start := time.Now()
			err := tx.CommitContext(ctx)
			if !errors.Is(err, ErrTxTimeout) {
				t.Fatalf("CommitContext(canceled) = %v, want ErrTxTimeout", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("canceled commit took %v", elapsed)
			}
			if tx.Err() == nil {
				t.Fatal("Tx.Err() = nil after timeout")
			}
			if got, _ := m.Get(1); got != 10 {
				t.Fatalf("Get(1) = %d after failed commit, want 10", got)
			}
			tx.Release()
			if err := m.Group().Txn().Set(m, 1, 99).Commit(); err != nil {
				t.Fatalf("fresh Commit after timeout: %v", err)
			}
			if got, _ := m.Get(1); got != 99 {
				t.Fatalf("Get(1) = %d, want 99", got)
			}
		})
	}
}

// TestCommitContextContention: a competitor's held prepare footprint on
// the same key keeps the commit conflicting until the context deadline;
// CommitContext gives up in bounded time with ErrTxTimeout, records a
// TimeoutAbort, and once the competitor aborts a fresh Tx commits.
func TestCommitContextContention(t *testing.T) {
	g := NewGroup[uint64](WithSTMStats(true))
	m := g.NewMap()
	if err := m.Set(5, 50); err != nil {
		t.Fatal(err)
	}
	release := holdFootprint(t, g, m, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	tx := g.Txn().Set(m, 5, 500)
	start := time.Now()
	err := tx.CommitContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("CommitContext under contention = %v, want ErrTxTimeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("contended commit took %v, want bounded by the 100ms deadline", elapsed)
	}
	tx.Release()
	release()
	if st := g.STMStats(); st.TimeoutAborts == 0 {
		t.Fatal("TimeoutAborts = 0 after a deadline abort")
	}
	if got, _ := m.Get(5); got != 50 {
		t.Fatalf("Get(5) = %d after timed-out commit, want 50", got)
	}
	if err := g.Txn().Set(m, 5, 500).Commit(); err != nil {
		t.Fatalf("Commit after competitor aborted: %v", err)
	}
	if got, _ := m.Get(5); got != 500 {
		t.Fatalf("Get(5) = %d, want 500", got)
	}
}

// TestWithCommitDeadline: the group-level deadline bounds plain Commit
// calls with no context in sight.
func TestWithCommitDeadline(t *testing.T) {
	g := NewGroup[uint64](WithCommitDeadline(100 * time.Millisecond))
	m := g.NewMap()
	if err := m.Set(7, 70); err != nil {
		t.Fatal(err)
	}
	release := holdFootprint(t, g, m, 7)
	tx := g.Txn().Set(m, 7, 700)
	err := tx.Commit()
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("Commit under WithCommitDeadline = %v, want ErrTxTimeout", err)
	}
	if !strings.Contains(err.Error(), "WithCommitDeadline") {
		t.Fatalf("error %q does not name WithCommitDeadline as the cause", err)
	}
	tx.Release()
	release()
	if err := g.Txn().Set(m, 7, 700).Commit(); err != nil {
		t.Fatalf("Commit after competitor aborted: %v", err)
	}
}

// TestShardedCommitContextExpired: a dead context fails both the
// single-shard fast path and the 2PC coordinator loop before any shard
// is touched.
func TestShardedCommitContextExpired(t *testing.T) {
	s := NewSharded[uint64](4)
	k0, k1 := uint64(1), MaxKey/2+1 // different shards
	if err := s.Set(k0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(k1, 20); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// Single-shard: routed to that shard's own bounded commit.
	tx := s.Txn()
	tx.Set(k0, 99)
	if err := tx.CommitContext(ctx); !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("single-shard CommitContext(canceled) = %v, want ErrTxTimeout", err)
	}
	tx.Release()

	// Cross-shard: the coordinator observes the dead context at the loop
	// top, before any prepare leg runs.
	tx = s.Txn()
	tx.Set(k0, 99)
	tx.Set(k1, 99)
	if err := tx.CommitContext(ctx); !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("cross-shard CommitContext(canceled) = %v, want ErrTxTimeout", err)
	}
	tx.Release()

	if got, _ := s.Get(k0); got != 10 {
		t.Fatalf("Get(k0) = %d, want 10", got)
	}
	if got, _ := s.Get(k1); got != 20 {
		t.Fatalf("Get(k1) = %d, want 20", got)
	}
	tx = s.Txn()
	tx.Set(k0, 99)
	tx.Set(k1, 99)
	if err := tx.CommitContext(context.Background()); err != nil {
		t.Fatalf("CommitContext(live) after timeouts: %v", err)
	}
	tx.Release()
}

// TestShardedCommitContextContention: a held footprint on one shard
// keeps that prepare leg conflicting; the cross-shard CommitContext
// times out in bounded time, aborts its prefix cleanly (the other
// shard stays available), and commits once the competitor is gone.
func TestShardedCommitContextContention(t *testing.T) {
	s := NewSharded[uint64](4, WithSTMStats(true))
	k0, k1 := uint64(1), MaxKey/2+1
	if err := s.Set(k0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(k1, 20); err != nil {
		t.Fatal(err)
	}
	sh := s.ShardOf(k0)
	release := holdFootprint(t, s.groups[sh], s.maps[sh], k0)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	tx := s.Txn()
	tx.Set(k0, 99)
	tx.Set(k1, 99)
	start := time.Now()
	err := tx.CommitContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("cross-shard CommitContext under contention = %v, want ErrTxTimeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("contended 2PC took %v, want bounded by the 100ms deadline", elapsed)
	}
	tx.Release()
	if st := s.STMStats(); st.TimeoutAborts == 0 {
		t.Fatal("TimeoutAborts = 0 after a 2PC deadline abort")
	}
	// The uncontended shard was released by the prefix abort: a
	// single-shard write there commits immediately.
	if err := s.Set(k1, 21); err != nil {
		t.Fatalf("Set on released shard: %v", err)
	}
	release()
	if got, _ := s.Get(k0); got != 10 {
		t.Fatalf("Get(k0) = %d after timed-out 2PC, want 10", got)
	}
	tx = s.Txn()
	tx.Set(k0, 99)
	tx.Set(k1, 99)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit after competitor aborted: %v", err)
	}
	tx.Release()
}

// TestWithCommitAttempts: the retry ceiling bounds a plain cross-shard
// Commit with no deadline at all — under a sustained conflict it fails
// after the configured number of rounds with ErrTxTimeout naming the
// attempt count, and the stats record the retries.
func TestWithCommitAttempts(t *testing.T) {
	s := NewSharded[uint64](4, WithSTMStats(true), WithCommitAttempts(2))
	k0, k1 := uint64(1), MaxKey/2+1
	if err := s.Set(k0, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(k1, 20); err != nil {
		t.Fatal(err)
	}
	sh := s.ShardOf(k0)
	release := holdFootprint(t, s.groups[sh], s.maps[sh], k0)

	tx := s.Txn()
	tx.Set(k0, 99)
	tx.Set(k1, 99)
	err := tx.Commit()
	if !errors.Is(err, ErrTxTimeout) {
		t.Fatalf("capped Commit = %v, want ErrTxTimeout", err)
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("capped Commit error = %q, want the attempt count", err)
	}
	tx.Release()
	release()
	st := s.STMStats()
	if st.MaxRetry < 2 {
		t.Fatalf("MaxRetry = %d, want >= 2", st.MaxRetry)
	}
	if st.TimeoutAborts == 0 {
		t.Fatal("TimeoutAborts = 0 after attempt-cap exhaustion")
	}
	if got, _ := s.Get(k0); got != 10 {
		t.Fatalf("Get(k0) = %d after capped commit, want 10", got)
	}
	tx = s.Txn()
	tx.Set(k0, 99)
	tx.Set(k1, 99)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit after competitor aborted: %v", err)
	}
	tx.Release()
}
