package leaplist

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	"leaplist/internal/core"
)

// shardSlots spreads logical slots over the whole uint64 keyspace so a
// handful of test keys covers every shard of a small Sharded map.
const shardSlots = 64

func slotKey(slot uint64) uint64 {
	return slot * (MaxKey / shardSlots)
}

// TestShardedRouting pins the key-range partition: every key routes to
// exactly one shard, shard ranges tile [0, MaxKey], and point ops land
// where ShardOf says.
func TestShardedRouting(t *testing.T) {
	for _, n := range []int{1, 3, 4, 8} {
		s := NewSharded[uint64](n)
		if s.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", s.Shards(), n)
		}
		var prevHi uint64
		for i := 0; i < n; i++ {
			lo, hi := s.ShardRange(i)
			if i == 0 && lo != 0 {
				t.Fatalf("shard 0 starts at %d", lo)
			}
			if i > 0 && lo != prevHi+1 {
				t.Fatalf("shard %d starts at %d, want %d", i, lo, prevHi+1)
			}
			if s.ShardOf(lo) != i || s.ShardOf(hi) != i {
				t.Fatalf("shard %d bounds route to (%d, %d)", i, s.ShardOf(lo), s.ShardOf(hi))
			}
			prevHi = hi
		}
		if prevHi != MaxKey {
			t.Fatalf("last shard ends at %d, want MaxKey", prevHi)
		}
		for slot := uint64(0); slot < shardSlots; slot++ {
			k := slotKey(slot)
			if err := s.Set(k, slot); err != nil {
				t.Fatalf("Set: %v", err)
			}
			if v, ok := s.Get(k); !ok || v != slot {
				t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
			}
		}
		if got := s.Len(); got != shardSlots {
			t.Fatalf("Len = %d, want %d", got, shardSlots)
		}
	}
}

// TestShardedRangeStitching pins cross-shard range stitching on both the
// non-transactional readers (Range, Collect, Count) and the transactional
// snapshot (Txn + GetRange): ascending key order across shard boundaries,
// early termination, boundary clipping.
func TestShardedRangeStitching(t *testing.T) {
	s := NewSharded[uint64](4)
	for slot := uint64(0); slot < shardSlots; slot++ {
		if err := s.Set(slotKey(slot), slot); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	// Full stitched collect, ascending.
	got := s.Collect(0, MaxKey)
	if len(got) != shardSlots {
		t.Fatalf("Collect len = %d, want %d", len(got), shardSlots)
	}
	for i, kv := range got {
		if kv.Key != slotKey(uint64(i)) || kv.Value != uint64(i) {
			t.Fatalf("Collect[%d] = %+v, want (%d, %d)", i, kv, slotKey(uint64(i)), i)
		}
	}
	// Sub-interval spanning two shard boundaries.
	lo, hi := slotKey(10), slotKey(50)
	if n := s.Count(lo, hi); n != 41 {
		t.Fatalf("Count = %d, want 41", n)
	}
	// Early termination mid-stitch.
	seen := 0
	s.Range(0, MaxKey, func(k, v uint64) bool {
		seen++
		return seen < 20
	})
	if seen != 20 {
		t.Fatalf("Range visited %d pairs, want 20", seen)
	}
	// Transactional stitched snapshot.
	tx := s.Txn()
	r := tx.GetRange(lo, hi)
	all := tx.GetRange(0, MaxKey)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if r.Count() != 41 {
		t.Fatalf("tx GetRange Count = %d, want 41", r.Count())
	}
	pairs := r.Pairs()
	for i, kv := range pairs {
		want := uint64(i + 10)
		if kv.Key != slotKey(want) || kv.Value != want {
			t.Fatalf("Pairs[%d] = %+v, want slot %d", i, kv, want)
		}
	}
	if all.Count() != shardSlots || len(all.Pairs()) != shardSlots {
		t.Fatalf("full tx range = %d pairs, want %d", all.Count(), shardSlots)
	}
	tx.Release()
}

// TestShardedTxEdgeCases pins the builder contract: empty commit, double
// commit, sticky staging errors, single-shard fast path, pooling.
func TestShardedTxEdgeCases(t *testing.T) {
	s := NewSharded[uint64](4)

	tx := s.Txn()
	if err := tx.Commit(); err != nil {
		t.Fatalf("empty Commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxCommitted) {
		t.Fatalf("double Commit = %v, want ErrTxCommitted", err)
	}
	tx.Release()
	tx.Release() // second release is a no-op

	// Sticky staging error: bad key poisons the whole tx.
	tx = s.Txn()
	tx.Set(^uint64(0), 1)
	tx.Set(1, 1)
	if err := tx.Commit(); !errors.Is(err, ErrKeyRange) {
		t.Fatalf("bad-key Commit = %v, want ErrKeyRange", err)
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("poisoned tx leaked a write")
	}
	tx.Release()

	// Single-shard fast path with handles and RYOW.
	tx = s.Txn()
	tx.Set(5, 50)
	g := tx.Get(5)
	d := tx.Delete(5)
	g2 := tx.Get(5)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if v, ok := g.Value(); !ok || v != 50 {
		t.Fatalf("staged Get = (%d, %v), want (50, true)", v, ok)
	}
	if !d.Present() {
		t.Fatal("staged Delete saw no key")
	}
	if _, ok := g2.Value(); ok {
		t.Fatal("Get after staged Delete still present")
	}
	tx.Release()

	// Inverted and empty intervals.
	tx = s.Txn()
	r := tx.GetRange(10, 5)
	dr := tx.DeleteRange(10, 5)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if r.Pairs() != nil || r.Count() != 0 || dr.Count() != 0 {
		t.Fatal("inverted interval not empty")
	}
	tx.Release()

	// Cross-shard delete handles.
	k0, k1 := slotKey(1), slotKey(40)
	if err := s.Set(k0, 1); err != nil {
		t.Fatal(err)
	}
	tx = s.Txn()
	d0 := tx.Delete(k0)
	d1 := tx.Delete(k1)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !d0.Present() || d1.Present() {
		t.Fatalf("cross-shard deletes = (%v, %v), want (true, false)", d0.Present(), d1.Present())
	}
	tx.Release()
}

// TestShardedTxOracle drives randomized mixed transactions (point and
// range ops, single- and cross-shard) against a mirror map on every
// variant, checking every handle result against the fold semantics and
// the final contents exactly.
func TestShardedTxOracle(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		s := NewSharded[uint64](4, WithVariant(v), WithNodeSize(4), WithMaxLevel(5))
		mirror := map[uint64]uint64{}
		r := rand.New(rand.NewPCG(11, uint64(v)))
		rounds := 300
		if testing.Short() {
			rounds = 60
		}
		for round := 0; round < rounds; round++ {
			tx := s.Txn()
			// Shadow overlay: nil pointer = deleted, else staged value.
			shadow := map[uint64]*uint64{}
			look := func(k uint64) (uint64, bool) {
				if p, ok := shadow[k]; ok {
					if p == nil {
						return 0, false
					}
					return *p, true
				}
				val, ok := mirror[k]
				return val, ok
			}
			type expGet struct {
				h     ShardedGet[uint64]
				v     uint64
				found bool
			}
			type expDel struct {
				h       ShardedDelete[uint64]
				present bool
			}
			type expRange struct {
				h     ShardedRange[uint64]
				pairs []KV[uint64]
			}
			type expDelRange struct {
				h ShardedDeleteRange[uint64]
				n int
			}
			var gets []expGet
			var dels []expDel
			var ranges []expRange
			var delRanges []expDelRange
			nops := 1 + r.IntN(5)
			for o := 0; o < nops; o++ {
				slot := r.Uint64N(shardSlots)
				k := slotKey(slot)
				switch r.IntN(6) {
				case 0, 1:
					val := r.Uint64N(1 << 30)
					tx.Set(k, val)
					vv := val
					shadow[k] = &vv
				case 2:
					_, present := look(k)
					dels = append(dels, expDel{tx.Delete(k), present})
					shadow[k] = nil
				case 3:
					val, found := look(k)
					gets = append(gets, expGet{tx.Get(k), val, found})
				case 4:
					hiSlot := slot + r.Uint64N(24)
					if hiSlot >= shardSlots {
						hiSlot = shardSlots - 1
					}
					var want []KV[uint64]
					for sl := slot; sl <= hiSlot; sl++ {
						if val, ok := look(slotKey(sl)); ok {
							want = append(want, KV[uint64]{Key: slotKey(sl), Value: val})
						}
					}
					ranges = append(ranges, expRange{tx.GetRange(k, slotKey(hiSlot)), want})
				default:
					hiSlot := slot + r.Uint64N(24)
					if hiSlot >= shardSlots {
						hiSlot = shardSlots - 1
					}
					n := 0
					for sl := slot; sl <= hiSlot; sl++ {
						if _, ok := look(slotKey(sl)); ok {
							n++
							shadow[slotKey(sl)] = nil
						}
					}
					delRanges = append(delRanges, expDelRange{tx.DeleteRange(k, slotKey(hiSlot)), n})
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("round %d Commit: %v", round, err)
			}
			for i, e := range gets {
				val, found := e.h.Value()
				if found != e.found || (found && val != e.v) {
					t.Fatalf("round %d get %d = (%d, %v), want (%d, %v)", round, i, val, found, e.v, e.found)
				}
			}
			for i, e := range dels {
				if e.h.Present() != e.present {
					t.Fatalf("round %d delete %d present = %v, want %v", round, i, e.h.Present(), e.present)
				}
			}
			for i, e := range ranges {
				got := e.h.Pairs()
				if len(got) != len(e.pairs) || e.h.Count() != len(e.pairs) {
					t.Fatalf("round %d range %d: %d pairs (count %d), want %d", round, i, len(got), e.h.Count(), len(e.pairs))
				}
				for j := range got {
					if got[j] != e.pairs[j] {
						t.Fatalf("round %d range %d pair %d = %+v, want %+v", round, i, j, got[j], e.pairs[j])
					}
				}
			}
			for i, e := range delRanges {
				if e.h.Count() != e.n {
					t.Fatalf("round %d delrange %d count = %d, want %d", round, i, e.h.Count(), e.n)
				}
			}
			tx.Release()
			// Fold the overlay into the mirror.
			for k, p := range shadow {
				if p == nil {
					delete(mirror, k)
				} else {
					mirror[k] = *p
				}
			}
		}
		// Final contents must equal the mirror exactly.
		if got := s.Len(); got != len(mirror) {
			t.Fatalf("Len = %d, mirror %d", got, len(mirror))
		}
		for _, kv := range s.Collect(0, MaxKey) {
			if mv, ok := mirror[kv.Key]; !ok || mv != kv.Value {
				t.Fatalf("key %d = %d, mirror (%d, %v)", kv.Key, kv.Value, mv, ok)
			}
		}
	})
}

// TestShardedTxAllOrNone is the acceptance stress for cross-shard
// atomicity: workers move units between their own keys in different
// shards with cross-shard transactions while observers take atomic
// whole-store snapshots (Txn + GetRange over every shard) and check
// conservation — a snapshot straddling a half-published transfer would
// break the invariant immediately. All four variants, race-clean.
func TestShardedTxAllOrNone(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		const (
			shards  = 4
			workers = 4
			initBal = 1000
		)
		s := NewSharded[uint64](shards, WithVariant(v), WithNodeSize(8))
		key := func(shard, worker int) uint64 {
			lo, _ := s.ShardRange(shard)
			return lo + uint64(worker)
		}
		for sh := 0; sh < shards; sh++ {
			for w := 0; w < workers; w++ {
				if err := s.Set(key(sh, w), initBal); err != nil {
					t.Fatalf("Set: %v", err)
				}
			}
		}
		total := uint64(shards * workers * initBal)
		iters := 300
		if testing.Short() {
			iters = 60
		}

		var writerWG, readerWG sync.WaitGroup
		stop := make(chan struct{})

		// Observers: each snapshot is one cross-shard transaction, so it
		// must see every transfer entirely or not at all.
		for o := 0; o < 2; o++ {
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					tx := s.Txn()
					snap := tx.GetRange(0, MaxKey)
					if err := tx.Commit(); err != nil {
						t.Errorf("observer Commit: %v", err)
						return
					}
					var sum uint64
					pairs := snap.Pairs()
					for _, kv := range pairs {
						sum += kv.Value
					}
					tx.Release()
					if len(pairs) != shards*workers || sum != total {
						t.Errorf("torn snapshot: %d pairs summing to %d, want %d pairs summing to %d",
							len(pairs), sum, shards*workers, total)
						return
					}
				}
			}()
		}

		// Transfer workers: worker w owns key(sh, w) in every shard, so
		// its read-modify-write needs no extra locking; the cross-shard
		// transaction is what must make the two writes atomic.
		for w := 0; w < workers; w++ {
			writerWG.Add(1)
			go func(w int) {
				defer writerWG.Done()
				r := rand.New(rand.NewPCG(uint64(w+1), 99))
				for i := 0; i < iters; i++ {
					from := r.IntN(shards)
					to := (from + 1 + r.IntN(shards-1)) % shards
					fk, tk := key(from, w), key(to, w)
					fv, _ := s.Get(fk)
					if fv == 0 {
						continue
					}
					tv, _ := s.Get(tk)
					tx := s.Txn()
					tx.Set(fk, fv-1).Set(tk, tv+1)
					readBack := tx.Get(fk)
					if err := tx.Commit(); err != nil {
						t.Errorf("transfer Commit: %v", err)
						return
					}
					if got, ok := readBack.Value(); !ok || got != fv-1 {
						t.Errorf("staged Get = (%d, %v), want (%d, true)", got, ok, fv-1)
						return
					}
					tx.Release()
				}
			}(w)
		}

		writerWG.Wait()
		close(stop)
		readerWG.Wait()

		// Quiescent audit.
		var sum uint64
		for _, kv := range s.Collect(0, MaxKey) {
			sum += kv.Value
		}
		if sum != total {
			t.Fatalf("final sum = %d, want %d", sum, total)
		}
	})
}

// TestShardedTxMixedContention hammers cross-shard transactions of every
// op kind against each other and against per-shard readers, then checks
// value integrity (every surviving value tags its key). Race-clean.
func TestShardedTxMixedContention(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		s := NewSharded[uint64](4, WithVariant(v), WithNodeSize(4), WithMaxLevel(5))
		const workers = 4
		iters := 200
		if testing.Short() {
			iters = 40
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				r := rand.New(rand.NewPCG(seed, 7))
				for i := 0; i < iters; i++ {
					slot := r.Uint64N(shardSlots)
					hiSlot := slot + r.Uint64N(32)
					if hiSlot >= shardSlots {
						hiSlot = shardSlots - 1
					}
					lo, hi := slotKey(slot), slotKey(hiSlot)
					switch r.IntN(4) {
					case 0:
						tx := s.Txn()
						for j := uint64(0); j < 3; j++ {
							sl := (slot + j*16) % shardSlots // spread across shards
							tx.Set(slotKey(sl), slotKey(sl)*2)
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("Sets: %v", err)
							return
						}
						tx.Release()
					case 1:
						tx := s.Txn()
						tx.DeleteRange(lo, hi)
						if err := tx.Commit(); err != nil {
							t.Errorf("DeleteRange: %v", err)
							return
						}
						tx.Release()
					case 2:
						tx := s.Txn()
						snap := tx.GetRange(lo, hi)
						tx.Set(lo, lo*2)
						if err := tx.Commit(); err != nil {
							t.Errorf("GetRange+Set: %v", err)
							return
						}
						for _, kv := range snap.Pairs() {
							if kv.Value != kv.Key*2 {
								t.Errorf("snapshot integrity: key %d holds %d", kv.Key, kv.Value)
								return
							}
						}
						tx.Release()
					default:
						s.Range(lo, hi, func(k, val uint64) bool {
							if val != k*2 {
								t.Errorf("range integrity: key %d holds %d", k, val)
								return false
							}
							return true
						})
					}
				}
			}(uint64(w + 1))
		}
		wg.Wait()
		for _, kv := range s.Collect(0, MaxKey) {
			if kv.Value != kv.Key*2 {
				t.Fatalf("key %d holds %d, want %d", kv.Key, kv.Value, kv.Key*2)
			}
		}
	})
}

// TestShardedSTMStats pins the aggregated counters: transactions ran, and
// the snapshot keeps its internal ordering invariant.
func TestShardedSTMStats(t *testing.T) {
	s := NewSharded[uint64](4, WithSTMStats(true))
	for slot := uint64(0); slot < shardSlots; slot++ {
		if err := s.Set(slotKey(slot), slot); err != nil {
			t.Fatal(err)
		}
	}
	tx := s.Txn()
	tx.Set(slotKey(1), 1).Set(slotKey(40), 2) // cross-shard
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx.Release()
	st := s.STMStats()
	if st.Starts == 0 || st.Commits == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.Commits+st.Aborts > st.Starts {
		t.Fatalf("outcome counters exceed starts: %+v", st)
	}
}

// TestShardedPrepareErrTypes pins the coordinator's error contract:
// conflicts are retried internally and never surface from Commit —
// in particular never as core.ErrPrepareConflict.
func TestShardedPrepareErrTypes(t *testing.T) {
	s := NewSharded[uint64](2)
	for i := 0; i < 50; i++ {
		tx := s.Txn()
		tx.Set(slotKey(1), uint64(i)).Set(slotKey(40), uint64(i))
		if err := tx.Commit(); err != nil {
			if errors.Is(err, core.ErrPrepareConflict) {
				t.Fatalf("Commit %d leaked the internal conflict sentinel: %v", i, err)
			}
			t.Fatalf("Commit %d: %v", i, err)
		}
		tx.Release()
	}
}
