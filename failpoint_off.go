//go:build !failpoint

package leaplist

// Normal-build failpoint shims: both inline to nothing.

func fpEval(string) error { return nil }

func fpHit(string) {}
