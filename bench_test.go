// Benchmark proxies for every figure panel of the paper's evaluation,
// plus the ablations called out in DESIGN.md.
//
// Each BenchmarkFigNN sub-benchmark reproduces one (figure, algorithm)
// cell at a fixed representative worker count; the full thread/element
// sweeps that regenerate whole figures run through cmd/leapbench, which
// shares the same harness code. Benchmark initializations are scaled down
// (50K-100K elements instead of the paper's 100K-1M) so the suite
// completes in minutes; shapes, not absolute numbers, are the contract,
// and EXPERIMENTS.md records the full-size runs.
//
// The custom ops/s metric is the paper's throughput measure; ns/op is the
// inverse over the workload mix.
package leaplist_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leaplist"
	"leaplist/internal/core"
	"leaplist/internal/epoch"
	"leaplist/internal/harness"
	"leaplist/internal/workload"
)

const (
	benchWorkers   = 8
	benchInitSmall = 50_000  // figures 14-16 proxy (paper: 100K)
	benchInitBig   = 100_000 // figure 17 proxy (paper: 1M)
)

var (
	mix100Modify = workload.Mix{ModifyPct: 100}
	mix404020    = workload.Mix{LookupPct: 40, RangePct: 40, ModifyPct: 20}
	mix100Lookup = workload.Mix{LookupPct: 100}
	mix100Range  = workload.Mix{RangePct: 100}
)

// runMixBench drives b.N operations of the mix through tgt from
// benchWorkers goroutines and reports ops/s.
func runMixBench(b *testing.B, tgt harness.Target, mix workload.Mix, initN int) {
	b.Helper()
	tgt.Init(initN)
	keySpace := uint64(initN)
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ReportAllocs() // allocs/op is a first-class metric of the write path
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < benchWorkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			gen, err := workload.NewGenerator(workload.Config{
				Mix:      mix,
				KeySpace: keySpace,
				RangeMin: harness.PaperRangeMin,
				RangeMax: harness.PaperRangeMax,
				Seed:     uint64(id + 1),
			})
			if err != nil {
				panic(err)
			}
			lists := tgt.Lists()
			ks := make([]uint64, lists)
			vs := make([]uint64, lists)
			hint := id
			for remaining.Add(-1) >= 0 {
				op, key, val, lo, hi := gen.Next()
				switch op {
				case workload.OpLookup:
					tgt.Lookup(hint, key)
				case workload.OpRange:
					tgt.RangeCount(hint, lo, hi)
				case workload.OpUpdate:
					ks[0], vs[0] = key, val
					for j := 1; j < lists; j++ {
						ks[j], vs[j] = gen.Key(), gen.Value()
					}
					tgt.UpdateBatch(ks, vs)
				case workload.OpRemove:
					ks[0] = key
					for j := 1; j < lists; j++ {
						ks[j] = gen.Key()
					}
					tgt.RemoveBatch(ks)
				}
				hint++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ops/s")
	}
}

// leapBuilder returns a fresh paper-configured Leap-List target.
func leapBuilder(v core.Variant, lists int) func() harness.Target {
	return func() harness.Target {
		return harness.NewLeapTarget(harness.LeapOptions{
			Variant:  v,
			Lists:    lists,
			NodeSize: harness.PaperNodeSize,
			MaxLevel: harness.PaperMaxLevel,
		})
	}
}

// benchLeapVariants runs one figure panel across the four variants.
func benchLeapVariants(b *testing.B, mix workload.Mix, initN int) {
	for _, v := range []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW} {
		build := leapBuilder(v, harness.PaperLists)
		b.Run(v.String(), func(b *testing.B) {
			runMixBench(b, build(), mix, initN)
		})
	}
}

// benchVsSkiplists runs one figure-17 panel: Leap-LT vs the baselines.
func benchVsSkiplists(b *testing.B, mix workload.Mix) {
	b.Run("Leap-LT", func(b *testing.B) {
		runMixBench(b, leapBuilder(core.VariantLT, 1)(), mix, benchInitBig)
	})
	b.Run("Skiplist-cas", func(b *testing.B) {
		runMixBench(b, harness.NewSkipCASTarget(16), mix, benchInitBig)
	})
	b.Run("Skiplist-tm", func(b *testing.B) {
		runMixBench(b, harness.NewSkipTMTarget(16, false), mix, benchInitBig)
	})
}

// ---- Figure 14: variants, 4 lists, 100K elements, thread sweep ----

func BenchmarkFig14a(b *testing.B) { benchLeapVariants(b, mix100Modify, benchInitSmall) }
func BenchmarkFig14b(b *testing.B) { benchLeapVariants(b, mix404020, benchInitSmall) }

// BenchmarkFig14aBundles is the write-path A/B for the versioned links
// (abl-bundles): the 100%-modify panel with bundle stamping on and off,
// bounding what the publish-phase record prepends/fills cost writers.
func BenchmarkFig14aBundles(b *testing.B) {
	for _, bundles := range []bool{true, false} {
		label := "off"
		if bundles {
			label = "on"
		}
		b.Run("bundles="+label, func(b *testing.B) {
			for _, v := range []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW} {
				b.Run(v.String(), func(b *testing.B) {
					tgt := harness.NewLeapTarget(harness.LeapOptions{
						Variant:   v,
						Lists:     harness.PaperLists,
						NodeSize:  harness.PaperNodeSize,
						MaxLevel:  harness.PaperMaxLevel,
						NoBundles: !bundles,
					})
					runMixBench(b, tgt, mix100Modify, benchInitSmall)
				})
			}
		})
	}
}

// ---- Figure 15: variants, element sweep ----

func BenchmarkFig15a(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			for _, v := range []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW} {
				b.Run(v.String(), func(b *testing.B) {
					runMixBench(b, leapBuilder(v, harness.PaperLists)(), mix100Modify, n)
				})
			}
		})
	}
}

func BenchmarkFig15b(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			for _, v := range []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW} {
				b.Run(v.String(), func(b *testing.B) {
					runMixBench(b, leapBuilder(v, harness.PaperLists)(), mix100Lookup, n)
				})
			}
		})
	}
}

// ---- Figure 16: variants, mix sweep ----

func BenchmarkFig16a(b *testing.B) {
	for _, pct := range []int{0, 50, 90} {
		mix := workload.Mix{LookupPct: pct, ModifyPct: 100 - pct}
		b.Run("lookup"+pctLabel(pct), func(b *testing.B) {
			benchLeapVariants(b, mix, benchInitSmall)
		})
	}
}

func BenchmarkFig16b(b *testing.B) {
	for _, pct := range []int{0, 50, 90} {
		mix := workload.Mix{RangePct: pct, ModifyPct: 100 - pct}
		b.Run("range"+pctLabel(pct), func(b *testing.B) {
			benchLeapVariants(b, mix, benchInitSmall)
		})
	}
}

// ---- Figure 17: Leap-LT vs skip-lists, single list ----

func BenchmarkFig17a(b *testing.B) { benchVsSkiplists(b, mix100Modify) }
func BenchmarkFig17b(b *testing.B) { benchVsSkiplists(b, mix404020) }
func BenchmarkFig17c(b *testing.B) { benchVsSkiplists(b, mix100Lookup) }
func BenchmarkFig17d(b *testing.B) { benchVsSkiplists(b, mix100Range) }

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationNodeSize sweeps K under the paper's mixed workload,
// probing the paper's footnote-2 choice of K=300.
func BenchmarkAblationNodeSize(b *testing.B) {
	for _, k := range []int{16, 64, 300, 512} {
		k := k
		b.Run("K="+sizeLabel(k), func(b *testing.B) {
			tgt := harness.NewLeapTarget(harness.LeapOptions{
				Variant:  core.VariantLT,
				Lists:    1,
				NodeSize: k,
				MaxLevel: harness.PaperMaxLevel,
			})
			runMixBench(b, tgt, mix404020, benchInitSmall)
		})
	}
}

// BenchmarkAblationTsExtension toggles STM timestamp extension under the
// range-query-heavy mix where long read transactions need it.
func BenchmarkAblationTsExtension(b *testing.B) {
	for _, off := range []bool{false, true} {
		name := "extension-on"
		if off {
			name = "extension-off"
		}
		off := off
		b.Run(name, func(b *testing.B) {
			tgt := harness.NewLeapTarget(harness.LeapOptions{
				Variant:      core.VariantLT,
				Lists:        harness.PaperLists,
				NodeSize:     harness.PaperNodeSize,
				MaxLevel:     harness.PaperMaxLevel,
				ExtensionOff: off,
			})
			runMixBench(b, tgt, mix404020, benchInitSmall)
		})
	}
}

// BenchmarkAblationListCount sweeps the composed batch width L.
func BenchmarkAblationListCount(b *testing.B) {
	for _, lists := range []int{1, 2, 4, 8} {
		lists := lists
		b.Run("L="+sizeLabel(lists), func(b *testing.B) {
			runMixBench(b, leapBuilder(core.VariantLT, lists)(), mix100Modify, benchInitSmall)
		})
	}
}

// BenchmarkAblationTrieVsBinary compares the two in-node directory
// strategies at the paper's node size (see also the micro-benchmarks in
// internal/trie).
func BenchmarkAblationTrieVsBinary(b *testing.B) {
	b.Run("structure", func(b *testing.B) {
		tgt := leapBuilder(core.VariantLT, 1)()
		runMixBench(b, tgt, mix100Lookup, benchInitSmall)
	})
}

// ---- Mixed transactions (Group.Txn) ----

// BenchmarkTxMixed measures the general transaction path: each committed
// Tx stages two Sets on adjacent keys of one map (coalescing into one
// node replacement), one Set on a second map, and one Delete on a third —
// the mixed-shape batch the fixed SetMany/DeleteMany surface could not
// express. Tracks the cost of coalesced node replacement per variant.
func BenchmarkTxMixed(b *testing.B) {
	for _, v := range []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW} {
		b.Run(v.String(), func(b *testing.B) {
			g := leaplist.NewGroup[uint64](
				leaplist.WithVariant(v),
				leaplist.WithNodeSize(harness.PaperNodeSize),
				leaplist.WithMaxLevel(harness.PaperMaxLevel),
			)
			maps := [3]*leaplist.Map[uint64]{g.NewMap(), g.NewMap(), g.NewMap()}
			keys := make([]uint64, benchInitSmall)
			vals := make([]uint64, benchInitSmall)
			for i := range keys {
				keys[i], vals[i] = uint64(i), uint64(i)
			}
			for _, m := range maps {
				if err := m.BulkLoad(keys, vals); err != nil {
					b.Fatal(err)
				}
			}
			keySpace := uint64(benchInitSmall)
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < benchWorkers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					gen, err := workload.NewGenerator(workload.Config{
						Mix:      workload.Mix{ModifyPct: 100},
						KeySpace: keySpace,
						RangeMin: harness.PaperRangeMin,
						RangeMax: harness.PaperRangeMax,
						Seed:     seed,
					})
					if err != nil {
						panic(err)
					}
					for remaining.Add(-1) >= 0 {
						k := gen.Key()
						tx := g.Txn()
						tx.Set(maps[0], k, gen.Value())
						tx.Set(maps[0], k+1, gen.Value()) // same map, adjacent key
						tx.Set(maps[1], gen.Key(), gen.Value())
						tx.Delete(maps[2], gen.Key())
						if err := tx.Commit(); err != nil {
							panic(err)
						}
						tx.Release() // recycle the builder (no handles held)
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "tx/s")
			}
		})
	}
}

// BenchmarkTxRange measures the staged range-op commit path per variant:
// each Tx stages one GetRange over a paper-sized window plus one Set
// (the atomic read-with-update the Tx range API exists for), and every
// tenth Tx instead clears and repopulates a small interval with
// DeleteRange + Sets. Tracked with -benchmem so range-commit allocations
// are visible from day one.
func BenchmarkTxRange(b *testing.B) {
	for _, v := range []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW} {
		b.Run(v.String(), func(b *testing.B) {
			g := leaplist.NewGroup[uint64](
				leaplist.WithVariant(v),
				leaplist.WithNodeSize(harness.PaperNodeSize),
				leaplist.WithMaxLevel(harness.PaperMaxLevel),
			)
			m := g.NewMap()
			keys := make([]uint64, benchInitSmall)
			vals := make([]uint64, benchInitSmall)
			for i := range keys {
				keys[i], vals[i] = uint64(i), uint64(i)
			}
			if err := m.BulkLoad(keys, vals); err != nil {
				b.Fatal(err)
			}
			keySpace := uint64(benchInitSmall)
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < benchWorkers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					gen, err := workload.NewGenerator(workload.Config{
						Mix:      workload.Mix{RangePct: 100},
						KeySpace: keySpace,
						RangeMin: harness.PaperRangeMin,
						RangeMax: harness.PaperRangeMax,
						Seed:     seed,
					})
					if err != nil {
						panic(err)
					}
					i := 0
					for remaining.Add(-1) >= 0 {
						_, _, _, lo, hi := gen.Next()
						tx := g.Txn()
						if i++; i%10 == 0 {
							span := lo + 8
							tx.DeleteRange(m, lo, span)
							for k := lo; k <= span; k++ {
								tx.Set(m, k, k)
							}
						} else {
							tx.GetRange(m, lo, hi)
							tx.Set(m, lo, gen.Value())
						}
						if err := tx.Commit(); err != nil {
							panic(err)
						}
						tx.Release()
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "tx/s")
			}
		})
	}
}

// BenchmarkShardedTx measures the sharded store's transaction path at
// 1, 4 and 8 shards: each committed transaction stages two Sets on
// random keys plus a read-back Get — at one shard every commit takes
// the single-shard fast path (no coordination), at 4/8 shards most
// commits are genuine two-phase cross-shard transactions. Tracked with
// -benchmem so the coordination overhead's allocations are visible.
func BenchmarkShardedTx(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			s := leaplist.NewSharded[uint64](shards,
				leaplist.WithNodeSize(harness.PaperNodeSize),
				leaplist.WithMaxLevel(harness.PaperMaxLevel),
			)
			// Spread the working set over the whole keyspace so every
			// shard owns an equal slice of it.
			stride := leaplist.MaxKey / uint64(benchInitSmall)
			keys := make([]uint64, benchInitSmall)
			vals := make([]uint64, benchInitSmall)
			for i := range keys {
				keys[i], vals[i] = uint64(i)*stride, uint64(i)
			}
			if err := s.BulkLoad(keys, vals); err != nil {
				b.Fatal(err)
			}
			keySpace := uint64(benchInitSmall)
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < benchWorkers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					gen, err := workload.NewGenerator(workload.Config{
						Mix:      workload.Mix{ModifyPct: 100},
						KeySpace: keySpace,
						RangeMin: harness.PaperRangeMin,
						RangeMax: harness.PaperRangeMax,
						Seed:     seed,
					})
					if err != nil {
						panic(err)
					}
					for remaining.Add(-1) >= 0 {
						k1 := gen.Key() * stride
						k2 := gen.Key() * stride
						tx := s.Txn()
						tx.Set(k1, gen.Value())
						tx.Set(k2, gen.Value())
						tx.Get(k1)
						if err := tx.Commit(); err != nil {
							panic(err)
						}
						tx.Release()
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "tx/s")
			}
		})
	}
}

// ---- Interval deletes: run-unlink scaling across span sizes ----

// BenchmarkDeleteRange measures one committed DeleteRange transaction
// over spans covering ~1, ~16 and ~256 nodes, per variant, with bundles
// on and off. The run-unlink commit path replaces per-node rebuilds with
// one predecessor swing per level and retires the covered interior as a
// single chain, so the O(deleted keys) rebuild/copy cost is gone:
// allocs/op stays flat from nodes=16 to nodes=256 and ns/op grows only
// with the residual per-node validation floor (each covered node still
// contributes a liveness kill plus one mark per level — a few inline STM
// records — because competitors validate against the exact slots they
// read; see lockEntry's run branch), far below proportional. The refill
// and the epoch-reclamation drain between iterations run with the timer
// stopped so deferred recycling of the previous run chain is not billed
// to the delete. Like BenchmarkLocality this is a single-worker per-op
// A/B; BENCH_*.json records the trajectory.
func BenchmarkDeleteRange(b *testing.B) {
	const nodeSize = 64
	fill := uint64(nodeSize / 2) // BulkLoad leaves nodes half full
	for _, bundles := range []bool{true, false} {
		label := "off"
		if bundles {
			label = "on"
		}
		b.Run("bundles="+label, func(b *testing.B) {
			for _, v := range []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW} {
				v := v
				b.Run(v.String(), func(b *testing.B) {
					for _, nodes := range []int{1, 16, 256} {
						nodes := nodes
						b.Run("nodes="+itoa(nodes), func(b *testing.B) {
							col := epoch.NewCollector()
							g := leaplist.NewGroup[uint64](
								leaplist.WithVariant(v),
								leaplist.WithNodeSize(nodeSize),
								leaplist.WithMaxLevel(harness.PaperMaxLevel),
								leaplist.WithBundles(bundles),
								leaplist.WithCollector(col),
							)
							m := g.NewMap()
							const initN = 16_384 // 512 half-full nodes
							keys := make([]uint64, initN)
							vals := make([]uint64, initN)
							for i := range keys {
								keys[i], vals[i] = uint64(i), uint64(i)
							}
							if err := m.BulkLoad(keys, vals); err != nil {
								b.Fatal(err)
							}
							// Span in the middle of the key space so both
							// boundary searches descend a populated structure.
							lo := uint64(initN) / 2
							hi := lo + uint64(nodes)*fill - 1
							runtime.GC()
							b.ReportAllocs()
							b.ResetTimer()
							for i := 0; i < b.N; i++ {
								tx := g.Txn()
								tx.DeleteRange(m, lo, hi)
								if err := tx.Commit(); err != nil {
									b.Fatal(err)
								}
								tx.Release()
								b.StopTimer()
								tx = g.Txn()
								for k := lo; k <= hi; k++ {
									tx.Set(m, k, k)
								}
								if err := tx.Commit(); err != nil {
									b.Fatal(err)
								}
								tx.Release()
								// Drain deferred epoch reclamation (the
								// previous delete's retired run chain and its
								// pool donations) while untimed, so it cannot
								// land inside the next timed window.
								col.Flush()
								b.StartTimer()
							}
						})
					}
				})
			}
		})
	}
}

// ---- Snapshot scans under churn: bundles A/B across shard counts ----

// BenchmarkSnapshotScan drives the scan-heavy mixed stream (two thirds
// long range scans spanning a quarter to half of the key space, the
// rest modify churn) against a Sharded store at 1 and 4 shards, with
// versioned links on and off. With bundles on every scan resolves one
// frozen timestamped cut and never retries; with bundles off a scan
// that races a structural change restarts its snapshot run, so the A/B
// exposes retry-driven collapse directly. Tracked with -benchmem so the
// timestamped path's scan allocations stay visible.
func BenchmarkSnapshotScan(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, bundles := range []bool{true, false} {
			label := "off"
			if bundles {
				label = "on"
			}
			b.Run("shards="+itoa(shards)+"/bundles="+label, func(b *testing.B) {
				runSnapshotScanBench(b, shards, bundles)
			})
		}
	}
}

func runSnapshotScanBench(b *testing.B, shards int, bundles bool) {
	const initN = 20_000
	s := leaplist.NewSharded[uint64](shards,
		leaplist.WithNodeSize(harness.PaperNodeSize),
		leaplist.WithMaxLevel(harness.PaperMaxLevel),
		leaplist.WithBundles(bundles),
	)
	// Spread the working set over the whole keyspace so every shard
	// owns an equal slice and every long scan crosses shard boundaries.
	stride := leaplist.MaxKey / uint64(initN)
	keys := make([]uint64, initN)
	vals := make([]uint64, initN)
	for i := range keys {
		keys[i], vals[i] = uint64(i)*stride, uint64(i)
	}
	if err := s.BulkLoad(keys, vals); err != nil {
		b.Fatal(err)
	}
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < benchWorkers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			gen, err := workload.NewScanHeavyGenerator(initN, seed)
			if err != nil {
				panic(err)
			}
			buf := make([]leaplist.KV[uint64], 0, initN)
			for remaining.Add(-1) >= 0 {
				op, key, val, lo, hi := gen.Next()
				switch op {
				case workload.OpLookup:
					s.Get(key * stride)
				case workload.OpRange:
					if hi >= initN { // clamp to the loaded grid: hi*stride must not wrap
						hi = initN - 1
					}
					buf = s.CollectInto(lo*stride, hi*stride, buf[:0])
				case workload.OpUpdate:
					if err := s.Set(key*stride, val); err != nil {
						panic(err)
					}
				case workload.OpRemove:
					if _, err := s.Delete(key * stride); err != nil {
						panic(err)
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ops/s")
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return itoa(n/1_000_000) + "M"
	case n >= 1_000 && n%1_000 == 0:
		return itoa(n/1_000) + "K"
	default:
		return itoa(n)
	}
}

func pctLabel(p int) string { return itoa(p) + "%" }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- Locality: finger-search A/B (see WithFingers) ----

// localityMap builds a preloaded single map with fingers on or off.
func localityMap(b *testing.B, v core.Variant, fingers bool, nodeSize int) (*leaplist.Group[uint64], *leaplist.Map[uint64]) {
	b.Helper()
	g := leaplist.NewGroup[uint64](
		leaplist.WithVariant(v),
		leaplist.WithNodeSize(nodeSize),
		leaplist.WithMaxLevel(harness.PaperMaxLevel),
		leaplist.WithFingers(fingers),
	)
	m := g.NewMap()
	keys := make([]uint64, benchInitSmall)
	vals := make([]uint64, benchInitSmall)
	for i := range keys {
		keys[i], vals[i] = uint64(i), uint64(i)
	}
	if err := m.BulkLoad(keys, vals); err != nil {
		b.Fatal(err)
	}
	// Settle the heap before the timed loop: each sub-benchmark's bulk
	// load leaves megabytes of garbage, and without a collection here the
	// later-ordered sub of each on/off pair pays the previous sub's GC
	// debt — a positional bias on the order of the finger delta itself.
	runtime.GC()
	runtime.GC()
	return g, m
}

// localGen builds one worker's locality-skewed stream: Zipf over a small
// window that strides upward, each worker anchored in its own region.
// stride spaces consecutive draws: 2 for point streams (stay inside a
// node), ~a node's worth for batch streams (each Tx key lands in the
// next node over, the sorted-batch predecessor-reuse shape).
func localGen(b *testing.B, id int, stride uint64) *workload.LocalGenerator {
	b.Helper()
	gen, err := workload.NewLocalGenerator(workload.LocalConfig{
		KeySpace: benchInitSmall,
		Window:   32,
		Stride:   stride,
		ZipfS:    1.1,
		Seed:     uint64(id + 1),
	})
	if err != nil {
		b.Fatal(err)
	}
	// Scatter anchors: each worker claims its own neighbourhood so the
	// streams exhibit per-worker locality, not global contention on one
	// window.
	for i := 0; i < id*1000; i++ {
		gen.Next()
	}
	return gen
}

// ---- Point path: hash-index A/B (see WithHashIndex) ----

// pointIndexMap builds a preloaded single map with the hash index on or
// off (fingers stay at their default: the index targets the streams
// fingers cannot help with, and the A/B must show the delta on top of
// the production configuration, not instead of it). Node size 16, the
// search-dominated end of the ablation sweep: at the paper's K=300 a
// 50K-element list is only ~300 nodes, the descent is cache-resident
// and the cold in-node search dominates either way, so the probe has
// almost nothing to skip; at small K the descent walks thousands of
// cold nodes and is the cost the index collapses (same regime argument
// as BenchmarkLocality's txbatch family).
func pointIndexMap(b *testing.B, v core.Variant, index bool) (*leaplist.Group[uint64], *leaplist.Map[uint64]) {
	b.Helper()
	g := leaplist.NewGroup[uint64](
		leaplist.WithVariant(v),
		leaplist.WithNodeSize(16),
		leaplist.WithMaxLevel(harness.PaperMaxLevel),
		leaplist.WithHashIndex(index),
	)
	m := g.NewMap()
	keys := make([]uint64, benchInitSmall)
	vals := make([]uint64, benchInitSmall)
	for i := range keys {
		keys[i], vals[i] = uint64(i), uint64(i)
	}
	if err := m.BulkLoad(keys, vals); err != nil {
		b.Fatal(err)
	}
	// Settle the heap before the timed loop (same positional-bias hazard
	// as localityMap: the later sub of each on/off pair must not pay the
	// earlier sub's GC debt).
	runtime.GC()
	runtime.GC()
	return g, m
}

// pointIndexKeys precomputes the key stream so generator cost stays out
// of the timed loop: uniform draws over the whole key space (the
// finger-hostile stream the index exists for), or Zipf-skewed draws
// (rank r weighted 1/(r+1)^1.1 from a striding anchor — a moving hot
// set, the stream fingers already serve, where the index must at least
// not hurt).
func pointIndexKeys(b *testing.B, zipf bool) []uint64 {
	b.Helper()
	cfg := workload.LocalConfig{
		KeySpace: benchInitSmall,
		Window:   benchInitSmall,
		Seed:     1,
	}
	if zipf {
		cfg.ZipfS = 1.1
	}
	gen, err := workload.NewLocalGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ks := make([]uint64, 1<<16)
	for i := range ks {
		ks[i] = gen.Next()
	}
	return ks
}

// BenchmarkPointIndex measures the hash-index acceleration on point
// streams, index on vs off, for the naked-read variant (LT) and the
// transactional-read variant (TM): "lookup" is a bare Get per op —
// uniform draws defeat the finger, so on a hit the whole descent
// collapses to one probe plus one in-node search; "tx" commits a
// two-Get point transaction per op — the provably-read-only group shape
// planGroups serves from the index without seeding a descent. Like
// BenchmarkLocality this is a single-worker per-op A/B (contended
// behaviour is covered by the figure benchmarks' parity requirement);
// BENCH_*.json records the trajectory.
func BenchmarkPointIndex(b *testing.B) {
	for _, dist := range []string{"uniform", "zipf"} {
		dist := dist
		b.Run(dist, func(b *testing.B) {
			for _, fam := range []string{"lookup", "tx"} {
				fam := fam
				b.Run(fam, func(b *testing.B) {
					for _, v := range []core.Variant{core.VariantLT, core.VariantTM} {
						v := v
						b.Run(v.String(), func(b *testing.B) {
							for _, index := range []bool{true, false} {
								index := index
								name := "index=on"
								if !index {
									name = "index=off"
								}
								b.Run(name, func(b *testing.B) {
									g, m := pointIndexMap(b, v, index)
									ks := pointIndexKeys(b, dist == "zipf")
									mask := len(ks) - 1
									b.ReportAllocs()
									b.ResetTimer()
									if fam == "lookup" {
										for i := 0; i < b.N; i++ {
											m.Get(ks[i&mask])
										}
										return
									}
									for i := 0; i < b.N; i++ {
										tx := g.Txn()
										tx.Get(m, ks[(2*i)&mask])
										tx.Get(m, ks[(2*i+1)&mask])
										if err := tx.Commit(); err != nil {
											b.Fatal(err)
										}
										tx.Release()
									}
								})
							}
						})
					}
				})
			}
		})
	}
}

// BenchmarkLocality measures the finger acceleration on locality-heavy
// streams, fingers on vs off, per variant: "lookup" is the pure
// read-locality stream (cursors, hot working sets — the shape where the
// skipped descent is the whole op); "point" alternates lookups
// and value-only sets over striding Zipf windows (read fingers + the
// cross-batch write finger); "txbatch" commits a consistent
// multi-read-with-update Tx per op — seven staged Gets plus one Set over
// ascending keys about a node apart — the shape sorted-batch predecessor
// reuse turns from eight full descents into one descent plus short
// walks. Unlike the figure benchmarks this one runs a single worker:
// it is a per-op cost A/B, and oversubscribing the host (the CI box has
// one core) would bury the on/off delta in scheduler noise; contended
// behaviour is covered by the figure benchmarks' parity requirement.
// BENCH_*.json records the trajectory.
func BenchmarkLocality(b *testing.B) {
	variants := []core.Variant{core.VariantLT, core.VariantCOP, core.VariantTM, core.VariantRW}
	for _, fam := range []string{"lookup", "point", "txbatch"} {
		fam := fam
		b.Run(fam, func(b *testing.B) {
			for _, v := range variants {
				v := v
				b.Run(v.String(), func(b *testing.B) {
					for _, fingers := range []bool{true, false} {
						fingers := fingers
						name := "fingers=on"
						if !fingers {
							name = "fingers=off"
						}
						b.Run(name, func(b *testing.B) {
							// The point family runs the paper's node size;
							// the batch family runs small nodes, where the
							// structure is search-dominated (more, shorter
							// nodes: longer per-level walks to skip, small
							// value-only copies) — the regime multi-key
							// predecessor reuse targets.
							nodeSize := harness.PaperNodeSize
							stride := uint64(2)
							if fam == "txbatch" {
								// BulkLoad leaves nodes half full
								// (~nodeSize/2 keys), so this stride lands
								// each successive batch key about one node
								// further on.
								nodeSize = 64
								stride = uint64(nodeSize)
							}
							g, m := localityMap(b, v, fingers, nodeSize)
							gen := localGen(b, 0, stride)
							ks := make([]uint64, 8)
							b.ReportAllocs()
							b.ResetTimer()
							if fam == "lookup" {
								for i := 0; i < b.N; i++ {
									m.Get(gen.Next())
								}
								return
							}
							if fam == "point" {
								for i := 0; i < b.N; i++ {
									k := gen.Next()
									if i%2 == 0 {
										m.Get(k)
									} else if err := m.Set(k, gen.Value()); err != nil {
										b.Fatal(err)
									}
								}
								return
							}
							for i := 0; i < b.N; i++ {
								gen.Batch(ks)
								tx := g.Txn()
								for _, k := range ks[:7] {
									tx.Get(m, k%benchInitSmall)
								}
								tx.Set(m, ks[7]%benchInitSmall, ks[7])
								if err := tx.Commit(); err != nil {
									b.Fatal(err)
								}
								tx.Release()
							}
						})
					}
				})
			}
		})
	}
}
