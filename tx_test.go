package leaplist

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

var txVariants = []Variant{LT, TM, COP, RWLock}

func forEachTxVariant(t *testing.T, fn func(t *testing.T, v Variant)) {
	for _, v := range txVariants {
		t.Run(v.String(), func(t *testing.T) { fn(t, v) })
	}
}

func TestTxMixedOpsAcrossMaps(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[string](WithVariant(v), WithNodeSize(4), WithMaxLevel(5))
		m1, m2 := g.NewMap(), g.NewMap()
		if err := m2.Set(30, "old"); err != nil {
			t.Fatalf("Set: %v", err)
		}

		tx := g.Txn()
		tx.Set(m1, 1, "a").Set(m1, 2, "b") // two keys, same map (same node)
		del := tx.Delete(m2, 30)
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if !del.Present() {
			t.Fatal("Delete.Present() = false, want true")
		}
		if v1, ok := m1.Get(1); !ok || v1 != "a" {
			t.Fatalf("m1.Get(1) = (%q, %v)", v1, ok)
		}
		if v2, ok := m1.Get(2); !ok || v2 != "b" {
			t.Fatalf("m1.Get(2) = (%q, %v)", v2, ok)
		}
		if _, ok := m2.Get(30); ok {
			t.Fatal("m2 still has deleted key 30")
		}
	})
}

func TestTxDuplicateKeyLastWriteWins(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[int](WithVariant(v), WithNodeSize(4))
		m := g.NewMap()
		tx := g.Txn()
		tx.Set(m, 7, 1).Set(m, 7, 2).Set(m, 7, 3)
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if got, ok := m.Get(7); !ok || got != 3 {
			t.Fatalf("Get(7) = (%d, %v), want (3, true)", got, ok)
		}
		if m.Len() != 1 {
			t.Fatalf("Len = %d, want 1", m.Len())
		}
	})
}

func TestTxSetThenDeleteSameKey(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[int](WithVariant(v), WithNodeSize(4))
		m := g.NewMap()

		// Set then Delete of an absent key: net no-op, delete sees the set.
		tx := g.Txn()
		tx.Set(m, 5, 50)
		del := tx.Delete(m, 5)
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if !del.Present() {
			t.Fatal("Delete after Set in same Tx: Present() = false, want true (read-your-own-writes)")
		}
		if _, ok := m.Get(5); ok {
			t.Fatal("key 5 survived Set+Delete Tx")
		}

		// Delete then Set: key ends up present.
		if err := m.Set(6, 60); err != nil {
			t.Fatalf("Set: %v", err)
		}
		tx2 := g.Txn()
		del2 := tx2.Delete(m, 6)
		tx2.Set(m, 6, 66)
		if err := tx2.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if !del2.Present() {
			t.Fatal("Delete of pre-existing key: Present() = false")
		}
		if got, ok := m.Get(6); !ok || got != 66 {
			t.Fatalf("Get(6) = (%d, %v), want (66, true)", got, ok)
		}
	})
}

func TestTxGetReadYourOwnWrites(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[int](WithVariant(v), WithNodeSize(4))
		m := g.NewMap()
		if err := m.Set(1, 10); err != nil {
			t.Fatalf("Set: %v", err)
		}

		tx := g.Txn()
		before := tx.Get(m, 1) // observes pre-state
		tx.Set(m, 1, 11)
		after := tx.Get(m, 1) // observes the staged write
		gone := tx.Get(m, 2)  // absent key
		tx.Delete(m, 1)
		afterDel := tx.Get(m, 1)
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if got, ok := before.Value(); !ok || got != 10 {
			t.Fatalf("before = (%d, %v), want (10, true)", got, ok)
		}
		if got, ok := after.Value(); !ok || got != 11 {
			t.Fatalf("after = (%d, %v), want (11, true)", got, ok)
		}
		if _, ok := gone.Value(); ok {
			t.Fatal("Get of absent key reported present")
		}
		if _, ok := afterDel.Value(); ok {
			t.Fatal("Get after staged Delete reported present")
		}
	})
}

func TestTxEmptyCommit(t *testing.T) {
	g := NewGroup[int]()
	tx := g.Txn()
	if err := tx.Commit(); err != nil {
		t.Fatalf("empty Commit = %v, want nil (no-op)", err)
	}
	// A committed Tx cannot be reused.
	tx.Set(g.NewMap(), 1, 1)
	if err := tx.Commit(); !errors.Is(err, ErrTxCommitted) {
		t.Fatalf("second Commit = %v, want ErrTxCommitted", err)
	}
}

func TestTxForeignMapRejected(t *testing.T) {
	g1, g2 := NewGroup[int](), NewGroup[int]()
	m1, foreign := g1.NewMap(), g2.NewMap()

	tx := g1.Txn()
	tx.Set(m1, 1, 1).Set(foreign, 2, 2)
	if err := tx.Commit(); !errors.Is(err, ErrForeignMap) {
		t.Fatalf("Commit = %v, want ErrForeignMap", err)
	}
	// The batch must not have partially applied.
	if _, ok := m1.Get(1); ok {
		t.Fatal("failed Tx partially applied")
	}

	tx2 := g1.Txn()
	tx2.Set(nil, 1, 1)
	if err := tx2.Commit(); !errors.Is(err, ErrForeignMap) {
		t.Fatalf("nil map Commit = %v, want ErrForeignMap", err)
	}

	tx3 := g1.Txn()
	tx3.Set(m1, MaxKey+1, 1)
	if err := tx3.Commit(); !errors.Is(err, ErrKeyRange) {
		t.Fatalf("out-of-range Commit = %v, want ErrKeyRange", err)
	}
}

// TestTxQuickOracle drives random transactions (random op mixes, random
// maps, duplicate keys included) against per-map model maps applied with
// the same last-write-wins rules, for every variant. Node size 2
// maximizes split/merge/coalesce churn.
func TestTxQuickOracle(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		f := func(seed uint64, txsRaw []uint32) bool {
			const L = 3
			g := NewGroup[uint64](WithVariant(v), WithNodeSize(2), WithMaxLevel(4))
			maps := make([]*Map[uint64], L)
			models := make([]map[uint64]uint64, L)
			for i := range maps {
				maps[i] = g.NewMap()
				models[i] = map[uint64]uint64{}
			}
			r := rand.New(rand.NewPCG(seed, 13))
			for _, raw := range txsRaw {
				nops := int(raw%5) + 1
				tx := g.Txn()
				type staged struct {
					kind int
					mi   int
					k    uint64
					v    uint64
					get  TxGet[uint64]
					del  TxDelete[uint64]
				}
				ops := make([]staged, 0, nops)
				for o := 0; o < nops; o++ {
					s := staged{
						kind: r.IntN(3),
						mi:   r.IntN(L),
						k:    r.Uint64N(16), // tiny space: lots of dup keys
						v:    r.Uint64(),
					}
					switch s.kind {
					case 0:
						tx.Set(maps[s.mi], s.k, s.v)
					case 1:
						s.del = tx.Delete(maps[s.mi], s.k)
					case 2:
						s.get = tx.Get(maps[s.mi], s.k)
					}
					ops = append(ops, s)
				}
				if err := tx.Commit(); err != nil {
					t.Logf("Commit: %v", err)
					return false
				}
				// Replay against the models in staging order, verifying the
				// Get and Delete results as we go.
				for _, s := range ops {
					model := models[s.mi]
					mv, mok := model[s.k]
					switch s.kind {
					case 0:
						model[s.k] = s.v
					case 1:
						if s.del.Present() != mok {
							t.Logf("Delete(%d) Present=%v, model %v", s.k, s.del.Present(), mok)
							return false
						}
						delete(model, s.k)
					case 2:
						gv, gok := s.get.Value()
						if gok != mok || (gok && gv != mv) {
							t.Logf("Get(%d) = (%d,%v), model (%d,%v)", s.k, gv, gok, mv, mok)
							return false
						}
					}
				}
			}
			// Final state must equal the models exactly.
			for i := range maps {
				if maps[i].Len() != len(models[i]) {
					t.Logf("map %d Len=%d, model %d", i, maps[i].Len(), len(models[i]))
					return false
				}
				bad := false
				maps[i].Range(0, MaxKey, func(k, val uint64) bool {
					if mv, ok := models[i][k]; !ok || mv != val {
						bad = true
						return false
					}
					return true
				})
				if bad {
					return false
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 30}
		if testing.Short() {
			cfg.MaxCount = 8
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTxConcurrentAtomicity is the acceptance stress: transactions commit
// {Set k, Set k+1, Delete k} with k, k+1 in one map (often one node) and
// the delete in a second map, while readers verify that the two same-map
// keys are never observed out of sync. Writers tag values with a
// per-commit stamp; since k and k+1 are always written together with the
// same stamp by the owning worker, a snapshot that sees different stamps
// for a worker's pair proves a torn batch.
func TestTxConcurrentAtomicity(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[uint64](WithVariant(v), WithNodeSize(8), WithMaxLevel(6))
		pairs, other := g.NewMap(), g.NewMap()
		const workers = 4
		iters := 400
		if testing.Short() {
			iters = 80
		}

		// Each worker owns the key pair (2w, 2w+1) in pairs.
		for w := 0; w < workers; w++ {
			tx := g.Txn()
			tx.Set(pairs, uint64(2*w), 0).Set(pairs, uint64(2*w)+1, 0)
			if err := tx.Commit(); err != nil {
				t.Fatalf("seed Commit: %v", err)
			}
		}

		var writerWG, readerWG sync.WaitGroup
		stop := make(chan struct{})
		var torn atomic.Bool

		for w := 0; w < workers; w++ {
			writerWG.Add(1)
			go func(w int) {
				defer writerWG.Done()
				k := uint64(2 * w)
				for i := 1; i <= iters; i++ {
					stamp := uint64(i)
					tx := g.Txn()
					tx.Set(pairs, k, stamp).Set(pairs, k+1, stamp)
					tx.Delete(other, uint64(w*100+i%7))
					if err := tx.Commit(); err != nil {
						t.Errorf("Commit: %v", err)
						return
					}
				}
			}(w)
		}
		for r := 0; r < 3; r++ {
			readerWG.Add(1)
			go func(seed uint64) {
				defer readerWG.Done()
				rng := rand.New(rand.NewPCG(seed, 1))
				for {
					select {
					case <-stop:
						return
					default:
					}
					if rng.IntN(2) == 0 {
						// One snapshot over every pair.
						vals := make(map[uint64]uint64)
						pairs.Range(0, uint64(2*workers)-1, func(k, val uint64) bool {
							vals[k] = val
							return true
						})
						for w := 0; w < workers; w++ {
							a, aok := vals[uint64(2*w)]
							b, bok := vals[uint64(2*w)+1]
							if !aok || !bok || a != b {
								torn.Store(true)
								return
							}
						}
					} else {
						// Writers also interleave with other-map churn.
						other.Range(0, 1000, func(k, val uint64) bool { return true })
					}
				}
			}(uint64(r + 1))
		}

		writerWG.Wait()
		close(stop)
		readerWG.Wait()
		if torn.Load() {
			t.Fatal("torn transaction observed: pair keys diverged within one snapshot")
		}
		// Final state: every pair at its final stamp.
		for w := 0; w < workers; w++ {
			a, _ := pairs.Get(uint64(2 * w))
			b, _ := pairs.Get(uint64(2*w) + 1)
			if a != uint64(iters) || b != uint64(iters) {
				t.Fatalf("worker %d final pair = (%d, %d), want (%d, %d)", w, a, b, iters, iters)
			}
		}
	})
}

// TestTxCoalescesNodeWrites checks that many keys landing in one fat node
// commit in one atomic step and end up correct (the per-node coalescing
// path: one Tx inserting a whole node's worth of keys, plus interleaved
// deletes).
func TestTxCoalescesNodeWrites(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[uint64](WithVariant(v), WithNodeSize(8), WithMaxLevel(6))
		m := g.NewMap()
		for i := uint64(0); i < 8; i++ {
			if err := m.Set(i, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		// One Tx: overwrite half the node, delete the other half, and
		// bulk-insert past capacity to force a multi-piece split.
		tx := g.Txn()
		for i := uint64(0); i < 8; i += 2 {
			tx.Set(m, i, i*100)
		}
		for i := uint64(1); i < 8; i += 2 {
			tx.Delete(m, i)
		}
		for i := uint64(100); i < 130; i++ {
			tx.Set(m, i, i)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if got, want := m.Len(), 4+30; got != want {
			t.Fatalf("Len = %d, want %d", got, want)
		}
		for i := uint64(0); i < 8; i += 2 {
			if val, ok := m.Get(i); !ok || val != i*100 {
				t.Fatalf("Get(%d) = (%d, %v)", i, val, ok)
			}
		}
		for i := uint64(1); i < 8; i += 2 {
			if _, ok := m.Get(i); ok {
				t.Fatalf("deleted key %d still present", i)
			}
		}
		for i := uint64(100); i < 130; i++ {
			if val, ok := m.Get(i); !ok || val != i {
				t.Fatalf("Get(%d) = (%d, %v)", i, val, ok)
			}
		}
	})
}

// TestRangeCallbackReentrancy pins the documented contract that a Range
// callback may call back into the map — including writes — under every
// variant (under RWLock this deadlocked when emission happened inside
// the read lock).
func TestRangeCallbackReentrancy(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		m := New[uint64](WithVariant(v), WithNodeSize(4))
		for i := uint64(0); i < 10; i++ {
			if err := m.Set(i, i); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		m.Range(0, 9, func(k, val uint64) bool {
			if err := m.Set(100+k, val); err != nil {
				t.Errorf("re-entrant Set: %v", err)
				return false
			}
			return true
		})
		if got := m.Len(); got != 20 {
			t.Fatalf("Len = %d, want 20", got)
		}
	})
}

// TestTxGetOnlyBatch commits transactions of only Gets — a linearizable
// multi-key read (under RWLock this takes read locks, not write locks).
func TestTxGetOnlyBatch(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[uint64](WithVariant(v), WithNodeSize(4))
		m1, m2 := g.NewMap(), g.NewMap()
		if err := m1.Set(1, 10); err != nil {
			t.Fatalf("Set: %v", err)
		}
		if err := m2.Set(2, 20); err != nil {
			t.Fatalf("Set: %v", err)
		}
		tx := g.Txn()
		a := tx.Get(m1, 1)
		b := tx.Get(m2, 2)
		c := tx.Get(m1, 3)
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if av, ok := a.Value(); !ok || av != 10 {
			t.Fatalf("a = (%d, %v)", av, ok)
		}
		if bv, ok := b.Value(); !ok || bv != 20 {
			t.Fatalf("b = (%d, %v)", bv, ok)
		}
		if _, ok := c.Value(); ok {
			t.Fatal("absent key reported present")
		}
	})
}

func ExampleGroup_Txn() {
	g := NewGroup[string]()
	byID := g.NewMap()
	byTime := g.NewMap()
	_ = byID.Set(6, "order-6")

	// One atomic transaction: upsert into both indexes, evict a stale
	// entry from one of them, and read a key back — including a write
	// staged in this same transaction.
	tx := g.Txn()
	tx.Set(byID, 7, "order-7").Set(byTime, 1700000000, "order-7")
	evicted := tx.Delete(byID, 6)
	seen := tx.Get(byID, 7)
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	v, _ := seen.Value()
	fmt.Println(v, evicted.Present())
	// Output:
	// order-7 true
}

// TestTxCommitErrorRecorded is the regression for the swallowed commit
// error: a CommitOps failure must be recorded in the Tx, so Err reports
// it, handles stay zero, and a repeat Commit returns the failure rather
// than ErrTxCommitted. The facade pre-validates stages, so the test
// corrupts a staged op (white-box) to force the core rejection.
func TestTxCommitErrorRecorded(t *testing.T) {
	g := NewGroup[int]()
	m := g.NewMap()
	if err := m.Set(1, 10); err != nil {
		t.Fatalf("Set: %v", err)
	}

	tx := g.Txn()
	get := tx.Get(m, 1)
	del := tx.Delete(m, 1)
	rng := tx.GetRange(m, 0, 5)
	tx.ops[0].Kind = 0 // corrupt: core.CommitOps must reject the batch

	err := tx.Commit()
	if err == nil {
		t.Fatal("Commit of corrupted batch succeeded")
	}
	if got := tx.Err(); !errors.Is(got, err) {
		t.Fatalf("Err() = %v, want the commit error %v", got, err)
	}
	if err2 := tx.Commit(); !errors.Is(err2, err) {
		t.Fatalf("second Commit = %v, want the original commit error %v (not ErrTxCommitted)", err2, err)
	}
	if _, ok := get.Value(); ok {
		t.Fatal("TxGet handle reported a value after a failed Commit")
	}
	if del.Present() {
		t.Fatal("TxDelete handle reported presence after a failed Commit")
	}
	if rng.Pairs() != nil || rng.Count() != 0 {
		t.Fatal("TxRange handle reported pairs after a failed Commit")
	}
	// The failed batch must not have partially applied.
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("map mutated by failed Commit: Get(1) = (%d, %v)", v, ok)
	}
}

// TestTxRangeOps pins the staged range-op semantics for every variant:
// snapshot at the linearization point, read-your-own-writes per covered
// key, staging-order interaction between range and point ops, and the
// interval normalization rules.
func TestTxRangeOps(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[uint64](WithVariant(v), WithNodeSize(4), WithMaxLevel(5))
		m1, m2 := g.NewMap(), g.NewMap()
		for i := uint64(0); i < 20; i++ {
			if err := m1.Set(i, i*10); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}

		tx := g.Txn()
		tx.Set(m1, 5, 555)                    // overwrite before the reads
		before := tx.GetRange(m1, 3, 8)       // sees 555, spans nodes
		delCount := tx.DeleteRange(m1, 4, 16) // drops 13 keys incl. the 555
		after := tx.GetRange(m1, 0, MaxKey)   // sees the thinned map
		tx.Set(m1, 10, 1000)                  // staged after the delete: survives
		tx.Set(m2, 7, 70)                     // second map rides along atomically
		empty := tx.GetRange(m1, 9, 2)        // inverted: empty, not an error
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}

		wantBefore := []KV[uint64]{{Key: 3, Value: 30}, {Key: 4, Value: 40}, {Key: 5, Value: 555}, {Key: 6, Value: 60}, {Key: 7, Value: 70}, {Key: 8, Value: 80}}
		gotBefore := before.Pairs()
		if len(gotBefore) != len(wantBefore) || before.Count() != len(wantBefore) {
			t.Fatalf("before = %v (count %d), want %v", gotBefore, before.Count(), wantBefore)
		}
		for i := range wantBefore {
			if gotBefore[i] != wantBefore[i] {
				t.Fatalf("before[%d] = %+v, want %+v", i, gotBefore[i], wantBefore[i])
			}
		}
		if delCount.Count() != 13 {
			t.Fatalf("DeleteRange count = %d, want 13", delCount.Count())
		}
		if after.Count() != 20-13 {
			t.Fatalf("after count = %d, want %d", after.Count(), 20-13)
		}
		for _, kv := range after.Pairs() {
			if kv.Key >= 4 && kv.Key <= 16 {
				t.Fatalf("after snapshot still holds deleted key %d", kv.Key)
			}
		}
		if empty.Pairs() != nil || empty.Count() != 0 {
			t.Fatal("inverted interval yielded pairs")
		}
		// Post-commit state: the later Set survived the DeleteRange.
		if val, ok := m1.Get(10); !ok || val != 1000 {
			t.Fatalf("Get(10) = (%d, %v), want (1000, true)", val, ok)
		}
		if _, ok := m1.Get(5); ok {
			t.Fatal("key 5 survived the DeleteRange")
		}
		if val, ok := m2.Get(7); !ok || val != 70 {
			t.Fatalf("m2.Get(7) = (%d, %v)", val, ok)
		}
		if got, want := m1.Len(), 20-13+1; got != want {
			t.Fatalf("m1.Len = %d, want %d", got, want)
		}
	})
}

// TestTxRangeQuickOracle drives random transactions mixing point and
// range ops against per-map models applied with the same staging-order
// rules, for every variant. Node size 2 maximizes node churn and
// multi-node runs.
func TestTxRangeQuickOracle(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		f := func(seed uint64, txsRaw []uint32) bool {
			const L = 2
			const keySpace = 32
			g := NewGroup[uint64](WithVariant(v), WithNodeSize(2), WithMaxLevel(4))
			maps := make([]*Map[uint64], L)
			models := make([]map[uint64]uint64, L)
			for i := range maps {
				maps[i] = g.NewMap()
				models[i] = map[uint64]uint64{}
			}
			r := rand.New(rand.NewPCG(seed, 17))
			for _, raw := range txsRaw {
				nops := int(raw%5) + 1
				tx := g.Txn()
				type staged struct {
					kind   int
					mi     int
					k, hi  uint64
					v      uint64
					get    TxGet[uint64]
					del    TxDelete[uint64]
					rng    TxRange[uint64]
					delRng TxDeleteRange[uint64]
				}
				ops := make([]staged, 0, nops)
				for o := 0; o < nops; o++ {
					s := staged{
						kind: r.IntN(5),
						mi:   r.IntN(L),
						k:    r.Uint64N(keySpace),
						v:    r.Uint64(),
					}
					s.hi = s.k + r.Uint64N(keySpace/2)
					switch s.kind {
					case 0:
						tx.Set(maps[s.mi], s.k, s.v)
					case 1:
						s.del = tx.Delete(maps[s.mi], s.k)
					case 2:
						s.get = tx.Get(maps[s.mi], s.k)
					case 3:
						s.rng = tx.GetRange(maps[s.mi], s.k, s.hi)
					default:
						s.delRng = tx.DeleteRange(maps[s.mi], s.k, s.hi)
					}
					ops = append(ops, s)
				}
				if err := tx.Commit(); err != nil {
					t.Logf("Commit: %v", err)
					return false
				}
				// Replay against the models in staging order, verifying
				// every handle as we go.
				for _, s := range ops {
					model := models[s.mi]
					switch s.kind {
					case 0:
						model[s.k] = s.v
					case 1:
						_, mok := model[s.k]
						if s.del.Present() != mok {
							t.Logf("Delete(%d) Present=%v, model %v", s.k, s.del.Present(), mok)
							return false
						}
						delete(model, s.k)
					case 2:
						mv, mok := model[s.k]
						gv, gok := s.get.Value()
						if gok != mok || (gok && gv != mv) {
							t.Logf("Get(%d) = (%d,%v), model (%d,%v)", s.k, gv, gok, mv, mok)
							return false
						}
					case 3, 4:
						var ks []uint64
						for k := range model {
							if k >= s.k && k <= s.hi {
								ks = append(ks, k)
							}
						}
						sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
						if s.kind == 3 {
							pairs := s.rng.Pairs()
							if len(pairs) != len(ks) || s.rng.Count() != len(ks) {
								t.Logf("GetRange[%d,%d] = %d pairs, model %d", s.k, s.hi, len(pairs), len(ks))
								return false
							}
							for j, k := range ks {
								if pairs[j].Key != k || pairs[j].Value != model[k] {
									t.Logf("GetRange pair %d = %+v, model (%d,%d)", j, pairs[j], k, model[k])
									return false
								}
							}
						} else {
							if s.delRng.Count() != len(ks) {
								t.Logf("DeleteRange[%d,%d].Count = %d, model %d", s.k, s.hi, s.delRng.Count(), len(ks))
								return false
							}
							for _, k := range ks {
								delete(model, k)
							}
						}
					}
				}
			}
			// Final state must equal the models exactly.
			for i := range maps {
				if maps[i].Len() != len(models[i]) {
					t.Logf("map %d Len=%d, model %d", i, maps[i].Len(), len(models[i]))
					return false
				}
				bad := false
				maps[i].Range(0, MaxKey, func(k, val uint64) bool {
					if mv, ok := models[i][k]; !ok || mv != val {
						bad = true
						return false
					}
					return true
				})
				if bad {
					return false
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 25}
		if testing.Short() {
			cfg.MaxCount = 8
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTxRangeAllOrNone is the range-op acceptance stress: writers
// alternate between atomically deleting a whole interval (DeleteRange)
// and atomically re-populating it (one Tx of Sets), while concurrent
// Range snapshots and Tx.GetRange reads must only ever observe the
// interval completely full or completely empty — a partially deleted
// interval proves a torn range commit.
func TestTxRangeAllOrNone(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[uint64](WithVariant(v), WithNodeSize(4), WithMaxLevel(6))
		m := g.NewMap()
		const span = 24 // interval [0, span): spans many NodeSize-4 nodes
		iters := 300
		if testing.Short() {
			iters = 60
		}
		fill := func() error {
			tx := g.Txn()
			for k := uint64(0); k < span; k++ {
				tx.Set(m, k, k+1)
			}
			err := tx.Commit()
			tx.Release()
			return err
		}
		if err := fill(); err != nil {
			t.Fatalf("seed fill: %v", err)
		}

		var writerWG, readerWG sync.WaitGroup
		stop := make(chan struct{})
		var torn atomic.Bool
		tornf := func(format string, args ...any) {
			if !torn.Swap(true) {
				t.Errorf(format, args...)
			}
		}

		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				tx := g.Txn()
				del := tx.DeleteRange(m, 0, span-1)
				if err := tx.Commit(); err != nil {
					tornf("DeleteRange Commit: %v", err)
					return
				}
				if n := del.Count(); n != span {
					tornf("DeleteRange removed %d of %d (iteration %d)", n, span, i)
					return
				}
				tx.Release()
				if err := fill(); err != nil {
					tornf("refill: %v", err)
					return
				}
			}
		}()

		for r := 0; r < 3; r++ {
			readerWG.Add(1)
			go func(useTx bool) {
				defer readerWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var n int
					if useTx {
						tx := g.Txn()
						h := tx.GetRange(m, 0, span-1)
						if err := tx.Commit(); err != nil {
							tornf("GetRange Commit: %v", err)
							return
						}
						n = h.Count()
						for _, kv := range h.Pairs() {
							if kv.Value != kv.Key+1 {
								tornf("GetRange integrity: key %d holds %d", kv.Key, kv.Value)
								return
							}
						}
						tx.Release()
					} else {
						n = m.Count(0, span-1)
					}
					if n != 0 && n != span {
						tornf("partial interval observed: %d of %d keys", n, span)
						return
					}
				}
			}(r%2 == 0)
		}

		writerWG.Wait()
		close(stop)
		readerWG.Wait()
		if torn.Load() {
			t.Fatal("torn range operation observed")
		}
	})
}

// TestLegacyWrappersOverTx pins the deprecated SetMany/DeleteMany
// contracts now that they are wrappers over Txn.
func TestLegacyWrappersOverTx(t *testing.T) {
	g := NewGroup[uint64](WithNodeSize(8))
	m1, m2 := g.NewMap(), g.NewMap()
	ms := []*Map[uint64]{m1, m2}

	if err := g.SetMany(nil, nil, nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty SetMany = %v, want ErrEmptyBatch", err)
	}
	if err := g.SetMany(ms, []uint64{1}, []uint64{1, 2}); !errors.Is(err, ErrBatchMismatch) {
		t.Fatalf("mismatch SetMany = %v, want ErrBatchMismatch", err)
	}
	if err := g.SetMany([]*Map[uint64]{m1, m1}, []uint64{1, 2}, []uint64{1, 2}); !errors.Is(err, ErrDuplicateMap) {
		t.Fatalf("dup SetMany = %v, want ErrDuplicateMap", err)
	}
	if _, err := g.DeleteMany([]*Map[uint64]{m1, m1}, []uint64{1, 2}); !errors.Is(err, ErrDuplicateMap) {
		t.Fatalf("dup DeleteMany = %v, want ErrDuplicateMap", err)
	}
	if err := g.SetMany(ms, []uint64{4, 9}, []uint64{40, 90}); err != nil {
		t.Fatalf("SetMany: %v", err)
	}
	changed, err := g.DeleteMany(ms, []uint64{4, 5})
	if err != nil {
		t.Fatalf("DeleteMany: %v", err)
	}
	if !changed[0] || changed[1] {
		t.Fatalf("DeleteMany changed = %v, want [true false]", changed)
	}
}

func TestTxSetIfSetNX(t *testing.T) {
	forEachTxVariant(t, func(t *testing.T, v Variant) {
		g := NewGroup[string](WithVariant(v), WithNodeSize(4), WithMaxLevel(5))
		m := g.NewMap()
		if err := m.Set(1, "a"); err != nil {
			t.Fatalf("Set: %v", err)
		}

		// SetIf applies on a matching value, not otherwise.
		tx := g.Txn()
		hit := tx.SetIf(m, 1, "a", "b")
		miss := tx.SetIf(m, 1, "zzz", "c")
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if !hit.Applied() {
			t.Fatal("SetIf(1, expect a) not applied")
		}
		if miss.Applied() {
			t.Fatal("SetIf(1, expect zzz) applied")
		}
		if got, _ := m.Get(1); got != "b" {
			t.Fatalf("Get(1) = %q, want b", got)
		}

		// SetNX applies only on an absent key; within one Tx it observes
		// earlier staged writes.
		tx = g.Txn()
		taken := tx.SetNX(m, 1, "x")
		first := tx.SetNX(m, 2, "y")
		second := tx.SetNX(m, 2, "z") // key 2 staged just above: present now
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if taken.Applied() {
			t.Fatal("SetNX(1) applied over a present key")
		}
		if !first.Applied() || second.Applied() {
			t.Fatalf("SetNX(2) twice = (%v,%v), want (true,false)", first.Applied(), second.Applied())
		}
		if got, _ := m.Get(2); got != "y" {
			t.Fatalf("Get(2) = %q, want y", got)
		}

		// SetIf observes a write staged earlier in the same Tx, and a Get
		// staged after it reads the conditional's outcome.
		tx = g.Txn()
		tx.Set(m, 3, "pre")
		cond := tx.SetIf(m, 3, "pre", "post")
		get := tx.Get(m, 3)
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if !cond.Applied() {
			t.Fatal("SetIf over staged write not applied")
		}
		if got, ok := get.Value(); !ok || got != "post" {
			t.Fatalf("staged Get = (%q,%v), want (post,true)", got, ok)
		}

		// Handles report false before commit and after a failed stage.
		tx = g.Txn()
		pending := tx.SetNX(m, 4, "w")
		if pending.Applied() {
			t.Fatal("Applied() true before Commit")
		}
		bad := tx.SetIf(nil, 5, "", "")
		if err := tx.Commit(); !errors.Is(err, ErrForeignMap) {
			t.Fatalf("Commit with nil map = %v, want ErrForeignMap", err)
		}
		if pending.Applied() || bad.Applied() {
			t.Fatal("Applied() true after failed commit")
		}
	})
}

// TestTxSetIfAtomicCounter is the classic CAS-loop exercise: concurrent
// incrementers over one key, each retrying SetIf until its expected value
// wins. Every increment must land exactly once.
func TestTxSetIfAtomicCounter(t *testing.T) {
	g := NewGroup[uint64]()
	m := g.NewMap()
	if err := m.Set(0, 0); err != nil {
		t.Fatal(err)
	}
	const (
		workers = 4
		perW    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				for {
					cur, _ := m.Get(0)
					tx := g.Txn()
					done := tx.SetIf(m, 0, cur, cur+1)
					if err := tx.Commit(); err != nil {
						t.Error(err)
						return
					}
					ok := done.Applied()
					tx.Release()
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got, _ := m.Get(0); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
}
