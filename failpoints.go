package leaplist

// Failpoint site names for the Sharded two-phase commit legs. Armed by
// shard_chaos_test.go under -tags failpoint; no-ops in normal builds
// (see internal/failpoint).
const (
	// fpShardPrepareLeg fires before each ascending per-shard prepare.
	// Arming it with ActError{After: k, Count: 1} injects a failure at
	// exactly shard position k, driving the prefix-abort path.
	fpShardPrepareLeg = "shard/2pc/prepare-leg"
	// fpShardPublishStartLeg / fpShardPublishAtLeg bracket the two
	// halves of the coordinated bundled publish (phase A on each shard,
	// then one shared timestamp, then fill on each shard).
	fpShardPublishStartLeg = "shard/2pc/publish-start-leg"
	fpShardPublishAtLeg    = "shard/2pc/publish-at-leg"
	// fpShardPublishLeg fires before each per-shard publish when
	// bundles are off (uncoordinated timestamps).
	fpShardPublishLeg = "shard/2pc/publish-leg"
	// fpShardAbortLeg fires before each prepared shard's abort in the
	// reverse-order prefix release.
	fpShardAbortLeg = "shard/2pc/abort-leg"
)
